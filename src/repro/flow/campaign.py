"""Parallel campaign runner: shard the paper's sweep across processes.

The paper's evaluation is embarrassingly parallel -- 39 circuits x
{CVS, Dscale, Gscale} x (vdd_low, slack_factor) settings -- but the
serial suite runner recomputes everything on any failure.  This module
turns the sweep into a fault-tolerant campaign:

* a **job** is one (circuit, method, rails-or-vdd_low, slack_factor)
  cell with a deterministic ``job_id`` (``--rails`` opens the N-rail
  MSV grid dimension); a job is a serialized
  :class:`~repro.api.config.FlowConfig` plus scheduling metadata, and
  the workers execute it through :class:`~repro.api.flow.Flow`;
* :func:`shard_jobs` splits one campaign across machines
  (``--shard K/N``): jobs partition deterministically by group, each
  shard resumes independently against its own store, and
  ``repro store compact SHARD1 SHARD2 ... --out MERGED`` folds the
  shard stores back together;
* jobs are grouped by (circuit, rail key, slack_factor) so the
  expensive optimize/map/constrain preparation runs once per group and
  is shared by all three methods (and cached per worker across groups);
* each worker process shares one
  :class:`~repro.api.cache.PreparedCache` holding the COMPASS library /
  match table per rail key and every :class:`PreparedCircuit` it
  builds (the serving daemon reuses the same cache with retention on);
* finished rows stream into an append-only :class:`ResultStore`
  (JSONL), so an interrupted campaign **resumes** by skipping completed
  job ids, and a worker exception -- or a ``timeout_s`` wall-clock
  overrun -- becomes a ``status: "failed"`` row instead of killing (or
  hanging) the sweep;
* ``rows_to_results`` folds ok-rows back into
  :class:`~repro.flow.experiment.CircuitResult` objects whose formatted
  Table 1 / Table 2 output is bit-identical to the serial path.

Serial (``n_jobs=1``) and parallel runs produce row-identical stores
modulo the volatile fields (timestamps, wall-clock, worker pid) --
``repro.netlist.network.Network.topological`` is hash-seed independent
precisely so that rows computed in different processes agree bit for
bit.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.api.artifact import (
    DEFAULT_COST_MODEL,
    CircuitResult,
    RunArtifact,
    ScalingReport,
    artifacts_to_results,
    flow_job_id,
)
from repro.api.config import (
    DEFAULT_SLACK_FACTOR,
    DEFAULT_VDD_LOW,
    FlowConfig,
)
from repro.api.cache import PreparedCache
from repro.api.flow import Flow, PreparedCircuit
from repro.api.registry import (
    BUILTIN_METHODS as METHODS,
    is_registered,
    registered_names,
)
from repro.core.gscale import DEFAULT_AREA_BUDGET, DEFAULT_MAX_ITER
from repro.flow.store import ResultStore

SWEEP_VDD_LOWS = (4.6, 4.3, 4.0, 3.7, 3.3)
"""Default ``--sweep`` grid for the low rail (the design-space question
the paper's conclusion leaves open)."""

SWEEP_SLACKS = (1.1, 1.2, 1.4)
"""Default ``--sweep`` grid for the timing-relaxation factor."""

RailSet = tuple[float, ...]
"""An ordered multi-rail supply set, highest first (``()`` = classic
dual-Vdd with the job's ``vdd_low``)."""

GroupKey = tuple[str, RailSet, float]
"""(circuit, rail key, slack_factor): jobs sharing one prepared circuit.
The rail key is ``rails`` for an MSV job and ``(vdd_low,)`` otherwise."""


class JobTimeout(Exception):
    """A campaign job exceeded its per-job wall-clock budget."""


class TimeoutUnsupportedError(RuntimeError):
    """A wall-clock budget was requested where none can be enforced
    (no ``SIGALRM`` / off the Unix main thread) under strict mode."""


_warned_unbudgeted = False


def reset_deadline_warning() -> None:
    """Re-arm the one-time cannot-enforce-budget warning (tests)."""
    global _warned_unbudgeted
    _warned_unbudgeted = False


@contextmanager
def job_deadline(seconds: float | None, strict: bool = False):
    """Raise :class:`JobTimeout` inside the block after ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, so it can interrupt a
    pure-Python scaling loop mid-flight; worker processes execute jobs
    on their main thread, which is exactly where this arms.  On
    platforms without the signal, or off the main thread, the in-block
    budget cannot be enforced: a supervised campaign (``n_jobs > 1``)
    still bounds the job through the parent's portable watchdog (which
    kills hung workers outright), but a serial run would silently run
    unbudgeted -- so this emits a one-time :class:`RuntimeWarning`, or
    raises :class:`TimeoutUnsupportedError` under ``strict=True``
    (``campaign --strict-timeouts``).
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        if strict:
            raise TimeoutUnsupportedError(
                f"cannot enforce the {seconds:g}s wall-clock budget "
                f"here (SIGALRM unavailable or off the main thread); "
                f"drop --strict-timeouts or run supervised (n_jobs > "
                f"1), where the parent watchdog enforces budgets "
                f"without signals"
            )
        global _warned_unbudgeted
        if not _warned_unbudgeted:
            _warned_unbudgeted = True
            import warnings

            warnings.warn(
                f"wall-clock budget of {seconds:g}s cannot be "
                f"enforced here (SIGALRM unavailable or off the main "
                f"thread); the job runs unbudgeted -- run supervised "
                f"(n_jobs > 1) for a signal-free watchdog, or pass "
                f"strict timeouts to make this an error",
                RuntimeWarning,
                stacklevel=3,
            )
        yield
        return

    def _expired(signum, frame):
        raise JobTimeout(f"job exceeded its {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class CampaignJob:
    """One cell of the sweep: circuit x method x rails x slack x cost model.

    ``rails=()`` is the classic dual-Vdd job at ``(5 V, vdd_low)``; a
    non-empty ``rails`` tuple (ordered, highest first) runs the N-rail
    flow, and ``vdd_low`` then mirrors ``rails[1]`` for aggregation.
    ``cost_model`` names a registered move-pricing model (the default
    ``paper`` keeps historical job ids unchanged).
    """

    circuit: str
    method: str
    vdd_low: float = DEFAULT_VDD_LOW
    slack_factor: float = DEFAULT_SLACK_FACTOR
    rails: RailSet = ()
    cost_model: str = DEFAULT_COST_MODEL

    @property
    def job_id(self) -> str:
        return flow_job_id(
            self.circuit,
            self.method,
            self.vdd_low,
            self.slack_factor,
            self.rails,
            self.cost_model,
        )

    @property
    def rail_key(self) -> RailSet:
        """What the worker library cache keys on."""
        return self.rails if self.rails else (self.vdd_low,)

    @property
    def group_key(self) -> GroupKey:
        return (self.circuit, self.rail_key, self.slack_factor)

    @classmethod
    def from_config(cls, config: FlowConfig) -> CampaignJob:
        """The scheduling identity of one :class:`FlowConfig` (the
        daemon's submission path: wire configs become campaign jobs)."""
        return cls(
            circuit=config.circuit,
            method=config.method,
            vdd_low=config.vdd_low,
            slack_factor=config.slack_factor,
            rails=config.rails,
            cost_model=config.cost_model,
        )

    def config(
        self,
        max_iter: int = DEFAULT_MAX_ITER,
        area_budget: float = DEFAULT_AREA_BUDGET,
    ) -> FlowConfig:
        """This job as a declarative :class:`FlowConfig`.

        The workers drive :class:`~repro.api.flow.Flow` with exactly
        this config, so a campaign job *is* a serialized FlowConfig
        plus scheduling metadata.
        """
        return FlowConfig(
            circuit=self.circuit,
            method=self.method,
            vdd_low=self.vdd_low,
            rails=self.rails,
            slack_factor=self.slack_factor,
            max_iter=max_iter,
            area_budget=area_budget,
            cost_model=self.cost_model,
        )


def build_jobs(
    circuits: Sequence[str],
    methods: Sequence[str] = METHODS,
    vdd_lows: Sequence[float] = (DEFAULT_VDD_LOW,),
    slack_factors: Sequence[float] = (DEFAULT_SLACK_FACTOR,),
    rails_sets: Sequence[RailSet] = (),
    cost_models: Sequence[str] = (DEFAULT_COST_MODEL,),
) -> list[CampaignJob]:
    """The full cross product, in deterministic order.

    ``rails_sets`` opens the MSV grid dimension: when given, each rail
    set replaces the ``vdd_lows`` axis (a rail set fixes every supply,
    including the high one).  ``cost_models`` opens the move-pricing
    dimension -- but only for methods whose registration declares
    ``prices_moves`` (Dscale among the builtins): a method that never
    consults the cost model appears exactly once per grid point, under
    the default model, rather than as N identically-computed rows
    mislabeled with models that could not have influenced them.
    """
    from repro.api.registry import get_method
    from repro.core.moves import get_cost_model

    for method in methods:
        if not is_registered(method):
            raise ValueError(
                f"method must be one of the registered scaling methods "
                f"{registered_names()}, got {method!r}"
            )
    for cost_model in cost_models:
        get_cost_model(cost_model)  # raises on an unknown name
    method_models: dict[str, tuple[str, ...]] = {}
    for method in methods:
        if get_method(method).prices_moves:
            method_models[method] = tuple(cost_models)
        else:
            method_models[method] = (DEFAULT_COST_MODEL,)

    if rails_sets:
        normalized: list[RailSet] = []
        for rails in rails_sets:
            rails = tuple(float(v) for v in rails)
            if len(rails) < 2:
                raise ValueError(
                    f"a rail set needs at least two supplies, got {rails}"
                )
            normalized.append(rails)
        return [
            CampaignJob(
                circuit=c, method=m, vdd_low=r[1], slack_factor=s, rails=r,
                cost_model=cm,
            )
            for c, r, s, m in itertools.product(
                circuits, normalized, slack_factors, methods
            )
            for cm in method_models[m]
        ]
    return [
        CampaignJob(circuit=c, method=m, vdd_low=v, slack_factor=s,
                    cost_model=cm)
        for c, v, s, m in itertools.product(
            circuits, vdd_lows, slack_factors, methods
        )
        for cm in method_models[m]
    ]


def group_jobs(
    jobs: Iterable[CampaignJob],
) -> list[tuple[GroupKey, list[CampaignJob]]]:
    """Group jobs by shared prepared circuit, preserving job order."""
    grouped: dict[GroupKey, list[CampaignJob]] = {}
    for job in jobs:
        grouped.setdefault(job.group_key, []).append(job)
    return list(grouped.items())


def shard_jobs(
    jobs: Sequence[CampaignJob], index: int, count: int
) -> list[CampaignJob]:
    """Deterministically partition ``jobs`` and keep shard ``index``.

    ``index`` is 1-based (the CLI's ``--shard 2/4`` keeps shard 2 of
    4), every job id lands on exactly one shard, and the union over all
    shards is the full job list -- so N machines can each run their
    shard into their own store and ``repro store compact`` the stores
    together afterwards.

    The partition unit is the *group* (circuit, rail key, slack
    factor), not the raw job id, so the methods sharing one prepared
    circuit always land on the same shard and no machine recomputes
    another's optimize/map/constrain prefix.  Groups are dealt
    round-robin in job-list order, which balances shard sizes to
    within one group; ``build_jobs`` emits a deterministic order, so
    every machine invoked with the same grid arguments computes the
    same partition.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise ValueError(
            f"shard index must satisfy 1 <= index <= count, "
            f"got {index}/{count}"
        )
    if count == 1:
        return list(jobs)
    group_shard: dict[GroupKey, int] = {}
    keep = []
    for job in jobs:
        key = job.group_key
        if key not in group_shard:
            group_shard[key] = len(group_shard) % count
        if group_shard[key] == index - 1:
            keep.append(job)
    return keep


# ---------------------------------------------------------------------
# Worker side.  Each worker process shares one
# :class:`repro.api.cache.PreparedCache`, so a library is characterized
# once per rail key and a circuit is prepared once per (circuit, rail
# key, slack_factor) -- for the default sweep that amortizes the whole
# pipeline prefix across all three methods.  The batch campaign runs
# with ``retain_prepared=False`` (every group is dispatched once, so
# cross-group retention is pure memory growth); the serving daemon
# reconfigures the cache with retention on and a byte cap.
# ---------------------------------------------------------------------

_WORKER_CACHE = PreparedCache(retain_prepared=False)


def worker_cache() -> PreparedCache:
    """This process's shared flow cache (stats live on ``.stats``)."""
    return _WORKER_CACHE


def configure_worker_cache(
    max_bytes: int | None = None,
    retain_prepared: bool = False,
    policy: str = "lru",
) -> PreparedCache:
    """Replace this process's shared cache with a reconfigured one.

    The supervisor's worker bootstrap calls this so a daemon-owned
    worker retains prepared circuits under a byte cap while a batch
    worker keeps the evict-after-group profile.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = PreparedCache(
        max_bytes=max_bytes,
        policy=policy,
        retain_prepared=retain_prepared,
    )
    return _WORKER_CACHE


def _group_config(
    circuit: str, rail_key: RailSet, slack_factor: float
) -> FlowConfig:
    """The canonical config of one preparation group.

    Carries the full rail information (not just an injected library) so
    the cache key distinguishes an MSV preparation from a dual-Vdd one.
    """
    if len(rail_key) > 1:
        return FlowConfig(
            circuit=circuit,
            vdd_low=rail_key[1],
            rails=rail_key,
            slack_factor=slack_factor,
        )
    return FlowConfig(
        circuit=circuit, vdd_low=rail_key[0], slack_factor=slack_factor
    )


def _get_library(rail_key: RailSet):
    return _WORKER_CACHE.library(rail_key)


def _get_prepared(
    circuit: str, rail_key: RailSet, slack_factor: float
) -> PreparedCircuit:
    config = _group_config(circuit, rail_key, slack_factor)
    return Flow(config, cache=_WORKER_CACHE).prepare()


def clear_worker_caches() -> None:
    """Drop the per-process library / prepared-circuit caches."""
    _WORKER_CACHE.clear()


def make_row(
    job: CampaignJob,
    prepared: PreparedCircuit,
    report: ScalingReport,
    runtime_s: float,
) -> dict[str, Any]:
    """One ok-row of the store, from a finished scaling run."""
    gates = sum(1 for n in prepared.network.nodes.values() if not n.is_input)
    return RunArtifact(
        circuit=job.circuit,
        method=job.method,
        vdd_low=job.vdd_low,
        slack_factor=job.slack_factor,
        rails=job.rails,
        cost_model=job.cost_model,
        status="ok",
        gates=gates,
        org_power_uw=report.power_before_uw,
        min_delay_ns=prepared.min_delay,
        tspec_ns=prepared.tspec,
        report=report,
        runtime_s=runtime_s,
    ).to_row()


def make_failed_row(
    job: CampaignJob,
    exc: BaseException,
    runtime_s: float,
    attempt: int = 1,
    status: str = "failed",
) -> dict[str, Any]:
    return RunArtifact.from_failure(
        job.circuit,
        job.method,
        exc,
        vdd_low=job.vdd_low,
        slack_factor=job.slack_factor,
        rails=job.rails,
        cost_model=job.cost_model,
        timeout=isinstance(exc, JobTimeout),
        runtime_s=runtime_s,
        attempt=attempt,
        status=status,
    ).to_row()


def iter_group_rows(
    group: Sequence[CampaignJob],
    max_iter: int = 10,
    area_budget: float = 0.10,
    timeout_s: float | None = None,
    strict_timeouts: bool = False,
    attempts: dict[str, int] | None = None,
    faults: Any = None,
    on_phase: Callable[[str], None] | None = None,
    on_start: Callable[[CampaignJob], None] | None = None,
) -> Iterator[tuple[CampaignJob, dict[str, Any]]]:
    """Yield ``(job, row)`` for every job of one preparation group.

    This is the execution core shared by the serial runner and the
    supervised workers.  A failing job -- including a preparation
    failure, which dooms the whole group -- yields failed rows; it
    never raises, so one bad circuit cannot take the campaign down.
    ``timeout_s`` budgets wall clock per *phase*: the group's shared
    preparation gets one budget of its own, then every job's scaling
    run gets another, so a group's worst case is
    ``(1 + len(group)) * timeout_s``.  An overrun becomes a failed row
    with ``timeout: true`` (for a preparation overrun, one per job in
    the group) while the rest of the campaign continues.

    ``attempts`` maps job ids to their 1-based execution attempt
    (stamped onto rows); ``faults`` is a
    :class:`~repro.flow.faults.FaultPlan` whose worker-side hooks run
    around each job; ``on_phase`` / ``on_start`` are the supervisor's
    heartbeat hooks, called before the preparation phase and before
    each job so the parent watchdog knows what this process is doing.
    """
    if not group:
        return
    attempts = attempts or {}
    notify_phase = on_phase or (lambda _label: None)
    notify_start = on_start or (lambda _job: None)

    first = group[0]
    notify_phase("prepare")
    started = time.perf_counter()
    try:
        with job_deadline(timeout_s, strict=strict_timeouts):
            library, match_table = _get_library(first.rail_key)
            prepared = _get_prepared(
                first.circuit, first.rail_key, first.slack_factor
            )
    except Exception as exc:  # JobTimeout included
        elapsed = time.perf_counter() - started
        for job in group:
            notify_start(job)
            yield (
                job,
                make_failed_row(
                    job,
                    exc,
                    elapsed,
                    attempt=attempts.get(job.job_id, 1),
                ),
            )
        return
    # A batch campaign dispatches each group exactly once, so keeping
    # the prepared circuit cached past this call is pure memory growth
    # in a long-lived worker; evict it (the library cache, keyed by
    # rail key, is the one with real cross-group reuse).  A retaining
    # cache (the daemon's) keeps it and lets its eviction policy decide.
    if not _WORKER_CACHE.retain_prepared:
        _WORKER_CACHE.evict_prepared(
            _group_config(first.circuit, first.rail_key, first.slack_factor)
        )

    base = Flow(
        first.config(max_iter=max_iter, area_budget=area_budget),
        library=library,
        match_table=match_table,
    )
    for job in group:
        attempt = attempts.get(job.job_id, 1)
        notify_start(job)
        if faults is not None:
            faults.before_job(job.job_id, attempt)
        started = time.perf_counter()
        try:
            with job_deadline(timeout_s, strict=strict_timeouts):
                if faults is not None:
                    faults.check_raise(job.job_id, attempt)
                artifact = base.replace(
                    method=job.method, cost_model=job.cost_model
                ).run(prepared=prepared)
        except Exception as exc:  # JobTimeout included
            yield (
                job,
                make_failed_row(
                    job,
                    exc,
                    time.perf_counter() - started,
                    attempt=attempt,
                ),
            )
            continue
        artifact.runtime_s = time.perf_counter() - started
        artifact.attempt = attempt
        if faults is not None:
            faults.after_job(job.job_id, attempt)
        yield job, artifact.to_row()


def run_job_group(
    group: Sequence[CampaignJob],
    max_iter: int = 10,
    area_budget: float = 0.10,
    timeout_s: float | None = None,
) -> list[dict[str, Any]]:
    """Run every job of one group; the list form of
    :func:`iter_group_rows` (see there for the failure semantics)."""
    return [
        row
        for _job, row in iter_group_rows(
            group,
            max_iter=max_iter,
            area_budget=area_budget,
            timeout_s=timeout_s,
        )
    ]


def _import_plugins(plugins: Sequence[str]) -> None:
    """Import plugin modules so their ``register_method`` calls run.

    Worker processes do not inherit the parent's registry under the
    ``spawn``/``forkserver`` start methods, so the plugin list rides
    along in every pool payload and is (idempotently -- imports are
    cached per process) re-imported before the group runs.
    """
    import importlib

    for module in plugins:
        importlib.import_module(module)


def _pool_worker(payload: tuple) -> list[dict[str, Any]]:
    """Top-level pool entry point (must be picklable)."""
    group, max_iter, area_budget, timeout_s, plugins = payload
    _import_plugins(plugins)
    return run_job_group(
        group,
        max_iter=max_iter,
        area_budget=area_budget,
        timeout_s=timeout_s,
    )


# ---------------------------------------------------------------------
# Parent side: scheduling, the store, resume.
# ---------------------------------------------------------------------


@dataclass
class CampaignSummary:
    """What a campaign run did (counts, not rows).

    ``poisoned`` jobs exhausted their supervised retry budget;
    ``retries`` counts the extra execution attempts behind the
    surviving rows (0 on a clean run).
    """

    total_jobs: int
    skipped: int
    ok: int
    failed: int
    elapsed_s: float
    poisoned: int = 0
    retries: int = 0

    @property
    def completed(self) -> int:
        return self.ok + self.failed + self.poisoned


def run_campaign(
    jobs: Sequence[CampaignJob],
    store: ResultStore,
    n_jobs: int = 1,
    resume: bool = False,
    max_iter: int = 10,
    area_budget: float = 0.10,
    timeout_s: float | None = None,
    plugins: Sequence[str] = (),
    progress: Callable[[str], None] | None = None,
    retry_failed: bool = False,
    max_attempts: int = 3,
    backoff_s: float = 0.25,
    strict_timeouts: bool = False,
    faults: Any = None,
) -> CampaignSummary:
    """Execute ``jobs``, streaming rows into ``store``.

    With ``resume=True`` the store's existing ok-rows are kept and
    their job ids skipped (failed rows are retried; poisoned rows stay
    quarantined unless ``retry_failed=True``); otherwise an existing
    store file is truncated.  ``n_jobs=1`` runs in-process; ``n_jobs>1``
    fans job groups out over a supervised worker pool
    (:class:`~repro.flow.supervise.Supervisor`) that survives hard
    worker deaths: a crashed or hung worker is killed and respawned,
    its in-flight job retried with exponential backoff up to
    ``max_attempts`` executions, then quarantined as a
    ``status: "poisoned"`` row.  The parent is the only writer, so rows
    land whole even when workers die mid-job.  ``timeout_s`` gives
    every job a wall-clock budget: an overrunning job is recorded as a
    failed (``timeout: true``) row instead of stalling its pool slot
    forever (supervised runs back the in-worker SIGALRM with a
    signal-free parent watchdog; serial runs without SIGALRM warn, or
    refuse under ``strict_timeouts``).  ``plugins`` names modules that
    register custom scaling methods; they are imported in this process
    *and* in every worker (spawn-safe), so registry-injected methods
    campaign like builtins.  ``faults`` threads a seeded
    :class:`~repro.flow.faults.FaultPlan` through the workers and the
    store writes (chaos testing only).
    """
    say = progress or (lambda _msg: None)
    if (
        faults is not None
        and faults.needs_supervisor
        and n_jobs <= 1
    ):
        raise ValueError(
            f"{faults.describe()} holds kill/hang faults, which only a "
            f"supervised campaign (n_jobs > 1) survives"
        )
    if (
        faults is not None
        and faults.hang_on
        and not timeout_s
    ):
        raise ValueError(
            "hang faults need timeout_s: without a budget the parent "
            "watchdog is disarmed and the hang never ends"
        )
    if resume:
        done = store.completed_ids(include_poisoned=not retry_failed)
    else:
        done = set()
        if os.path.exists(store.path):
            os.remove(store.path)

    pending = [job for job in jobs if job.job_id not in done]
    groups = group_jobs(pending)
    summary = CampaignSummary(
        total_jobs=len(jobs),
        skipped=len(jobs) - len(pending),
        ok=0,
        failed=0,
        elapsed_s=0.0,
    )
    if summary.skipped:
        say(f"resume: skipping {summary.skipped} completed job(s)")

    def record(row: dict[str, Any]) -> None:
        attempt = int(row.get("attempt", 1))
        damage = (
            faults.store_damage_for(row["job_id"], attempt)
            if faults is not None
            else None
        )
        if damage:
            store.append_damaged(row, damage)
        else:
            store.append(row)
        summary.retries += max(0, attempt - 1)
        note = f" (attempt {attempt})" if attempt > 1 else ""
        if row["status"] == "ok":
            summary.ok += 1
            say(
                f"ok     {row['job_id']}  "
                f"{row['report']['improvement_pct']:6.2f}%  "
                f"[{row['runtime_s']:.2f}s]{note}"
            )
        elif row["status"] == "poisoned":
            summary.poisoned += 1
            say(f"POISONED {row['job_id']}  {row['error']}{note}")
        else:
            summary.failed += 1
            say(f"FAILED {row['job_id']}  {row['error']}{note}")

    _import_plugins(plugins)
    started = time.perf_counter()
    with store:
        if n_jobs <= 1:
            for _key, group in groups:
                for _job, row in iter_group_rows(
                    group,
                    max_iter=max_iter,
                    area_budget=area_budget,
                    timeout_s=timeout_s,
                    strict_timeouts=strict_timeouts,
                    faults=faults,
                ):
                    record(row)
        else:
            from repro.flow.supervise import Supervisor

            supervisor = Supervisor(
                groups=[group for _key, group in groups],
                n_workers=n_jobs,
                max_iter=max_iter,
                area_budget=area_budget,
                timeout_s=timeout_s,
                plugins=tuple(plugins),
                strict_timeouts=strict_timeouts,
                faults=faults,
                max_attempts=max_attempts,
                backoff_s=backoff_s,
                say=say,
            )
            for row in supervisor.run():
                record(row)
    summary.elapsed_s = time.perf_counter() - started
    return summary


# ---------------------------------------------------------------------
# Aggregation: rows -> CircuitResult -> the paper's tables.
# ---------------------------------------------------------------------


def row_rails(row: dict[str, Any]) -> RailSet:
    """A row's rail set; schema-1 rows (no ``rails`` field) are classic
    dual-Vdd and normalize to the empty tuple."""
    return tuple(row.get("rails") or ())


def row_cost_model(row: dict[str, Any]) -> str:
    """A row's cost model; rows older than schema 3 used the paper's."""
    return row.get("cost_model") or DEFAULT_COST_MODEL


def rows_to_results(
    rows: Iterable[dict[str, Any]],
    vdd_low: float | None = None,
    slack_factor: float | None = None,
    rails: RailSet | None = None,
    cost_model: str | None = None,
) -> list[CircuitResult]:
    """Fold ok-rows back into per-circuit results.

    ``vdd_low`` / ``slack_factor`` / ``rails`` / ``cost_model`` filter
    a sweep store down to one grid point (defaulting to the only point
    present; ambiguous stores must be filtered explicitly; ``rails=()``
    selects the classic dual-Vdd rows).  Later rows win over earlier
    rows with the same job id, so a store produced by repeated resumes
    aggregates to the freshest run of every job.
    """
    ok_rows = [r for r in rows if r.get("status") == "ok"]
    points = {
        (r["vdd_low"], r["slack_factor"], row_rails(r), row_cost_model(r))
        for r in ok_rows
    }
    if vdd_low is not None:
        points = {p for p in points if p[0] == vdd_low}
        ok_rows = [r for r in ok_rows if r["vdd_low"] == vdd_low]
    if slack_factor is not None:
        points = {p for p in points if p[1] == slack_factor}
        ok_rows = [r for r in ok_rows if r["slack_factor"] == slack_factor]
    if rails is not None:
        rails = tuple(float(v) for v in rails)
        points = {p for p in points if p[2] == rails}
        ok_rows = [r for r in ok_rows if row_rails(r) == rails]
    if cost_model is not None:
        points = {p for p in points if p[3] == cost_model}
        ok_rows = [r for r in ok_rows if row_cost_model(r) == cost_model]
    if len(points) > 1:
        raise ValueError(
            "store holds a sweep over "
            f"{sorted(points)}; pass vdd_low=/slack_factor=/rails=/"
            "cost_model= to select one grid point"
        )

    # Last row per job id wins (a store spanning repeated resumes keeps
    # superseded rows on disk); dict insertion order preserves the first
    # appearance while the value tracks the freshest run.
    by_job: dict[Any, dict[str, Any]] = {}
    for row in ok_rows:
        by_job[row.get("job_id", id(row))] = row

    return artifacts_to_results(
        [RunArtifact.from_row(row) for row in by_job.values()]
    )


def sweep_points(rows: Iterable[dict[str, Any]]) -> list[tuple[float, float]]:
    """The distinct (vdd_low, slack_factor) grid points in a store."""
    return sorted(
        {
            (r["vdd_low"], r["slack_factor"])
            for r in rows
            if r.get("status") == "ok"
        }
    )


def sweep_rail_sets(rows: Iterable[dict[str, Any]]) -> list[RailSet]:
    """The distinct rail sets in a store (``()`` = classic dual-Vdd)."""
    return sorted({row_rails(r) for r in rows if r.get("status") == "ok"})


__all__ = [
    "DEFAULT_VDD_LOW",
    "SWEEP_VDD_LOWS",
    "SWEEP_SLACKS",
    "CampaignJob",
    "CampaignSummary",
    "JobTimeout",
    "TimeoutUnsupportedError",
    "job_deadline",
    "reset_deadline_warning",
    "build_jobs",
    "group_jobs",
    "shard_jobs",
    "iter_group_rows",
    "run_job_group",
    "run_campaign",
    "make_row",
    "make_failed_row",
    "row_cost_model",
    "row_rails",
    "rows_to_results",
    "sweep_points",
    "sweep_rail_sets",
    "clear_worker_caches",
    "configure_worker_cache",
    "worker_cache",
]
