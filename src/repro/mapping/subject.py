"""Subject graph construction for mapping.

The mapper wants a network of *primitive* nodes -- AND2, OR2, XOR2,
INV, and identity wrappers over primary outputs -- because cut functions
built from those compose into exactly the cones the library's cells
implement.  Anything else (wide nodes, exotic 2-input functions such as
``a & ~b``) is decomposed through its minimized sum-of-products, except
pure parities, which become balanced XOR2 trees (see
:func:`repro.opt.decompose._parity_structure`).
"""

from __future__ import annotations

from repro.netlist.functions import TruthTable
from repro.netlist.network import Network
from repro.opt.decompose import _Builder, decompose_node
from repro.opt.sweep import sweep

_PRIMITIVES = (
    TruthTable.and_(2),
    TruthTable.or_(2),
    TruthTable.xor(2),
    TruthTable.inverter(),
    TruthTable.identity(),
)


def is_primitive(table: TruthTable) -> bool:
    return table in _PRIMITIVES


def to_subject_graph(network: Network, prefix: str = "sg_") -> Network:
    """A functionally-equivalent primitive-only copy of ``network``."""
    subject = network.copy(f"{network.name}_subject")
    builder = _Builder(subject, prefix)
    for name in list(subject.gates()):
        node = subject.nodes[name]
        if node.function.const_value() is not None:
            raise ValueError(
                f"node {name!r} is constant; run repro.opt.sweep before "
                "mapping (the library has no tie cells)"
            )
        if not is_primitive(node.function):
            decompose_node(subject, name, builder)
    sweep(subject)
    for name in subject.gates():
        node = subject.nodes[name]
        if not is_primitive(node.function):
            raise AssertionError(f"non-primitive node {name!r} survived")
    return subject


__all__ = ["to_subject_graph", "is_primitive"]
