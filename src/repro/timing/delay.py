"""Dual-Vdd-aware pin-to-pin delay calculation.

Delay model (the paper's "simple static timing analysis" over a
"pin-to-pin Elmore delay model"): a gate's pin-to-output delay is
``intrinsic[pin] + drive_res * C_load`` with the load summed from fanout
pin capacitances, a fanout-count wire estimate, and the primary-output
load.  A gate assigned to Vlow uses its derated library twin; an edge
carrying a level converter inserts the converter's own stage delay and
replaces the reader's pin capacitance with the converter's on the
driver's net.

The calculator reads the caller's ``levels`` / ``lc_edges`` collections
*live* -- the dual-Vdd algorithms mutate those as they decide, and every
query reflects the current state.

With ``cache=True`` the calculator memoizes per-net loads, per-driver
converter stage delays, and per-gate cell variants.  Cached entries are
dropped *per net* through :meth:`DelayCalculator.invalidate_net` /
:meth:`DelayCalculator.invalidate_variant` rather than recomputed per
query; :class:`repro.core.state.ScalingState` owns the mutations and
routes every one to the right invalidation, which is what makes cached
queries safe against the live-read contract.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping

from repro.library.cells import Cell, Library
from repro.netlist.network import Network

OUTPUT = "@output"
"""Sentinel reader name for the primary-output use of a node."""

DEFAULT_PO_LOAD = 10.0
"""External capacitance (fF) presented by each primary output."""


class DemotionNetChange:
    """Result of :meth:`DelayCalculator.demotion_net_change`."""

    __slots__ = ("load_after", "converter_load", "new_edges")

    def __init__(self, load_after: float, converter_load: float | None,
                 new_edges: list[tuple[str, str]]):
        self.load_after = load_after
        self.converter_load = converter_load
        self.new_edges = new_edges

    @property
    def needs_converter(self) -> bool:
        return self.converter_load is not None


class DelayCalculator:
    """Pin delays, net loads, and converter delays for one network.

    Parameters
    ----------
    network:
        A technology-mapped network (every gate carries a cell).
    library:
        The enriched dual-Vdd library the cells came from.
    levels:
        Mapping from node name to ``True`` when the gate runs at Vlow.
        Missing names (and primary inputs) are at Vhigh.  The mapping is
        read live; callers mutate it as their algorithms decide.
    lc_edges:
        Collection of ``(driver, reader)`` pairs carrying a level
        converter, with ``reader == OUTPUT`` for a converter guarding a
        primary output.  Read live as well.
    cache:
        Enable per-net load / converter-delay / variant memoization.
        Only safe when the owner of ``levels`` / ``lc_edges`` / the
        network's cells reports every mutation via
        :meth:`invalidate_net` and :meth:`invalidate_variant` (see
        :class:`repro.core.state.ScalingState`).
    """

    def __init__(self, network: Network, library: Library,
                 levels: Mapping[str, bool] | None = None,
                 lc_edges: Collection[tuple[str, str]] | None = None,
                 lc_kind: str = "pg",
                 po_load: float = DEFAULT_PO_LOAD,
                 cache: bool = False):
        self.network = network
        self.library = library
        self.levels = levels if levels is not None else {}
        self.lc_edges = lc_edges if lc_edges is not None else set()
        self.lc_cell = library.level_converter(lc_kind)
        self.po_load = po_load
        self._twin_cache: dict[tuple[str, float], Cell] = {}
        self._load_cache: dict[str, float] | None = {} if cache else None
        self._lc_delay_cache: dict[str, float] | None = {} if cache else None
        self._variant_cache: dict[str, Cell] | None = {} if cache else None

    # ------------------------------------------------------------------
    # Cache invalidation (no-ops when caching is off)
    # ------------------------------------------------------------------

    def invalidate_net(self, name: str) -> None:
        """Drop cached load and converter delay of the net ``name`` drives."""
        if self._load_cache is not None:
            self._load_cache.pop(name, None)
            self._lc_delay_cache.pop(name, None)

    def invalidate_variant(self, name: str) -> None:
        """Drop the cached cell variant of gate ``name``."""
        if self._variant_cache is not None:
            self._variant_cache.pop(name, None)

    # ------------------------------------------------------------------
    # Cell selection
    # ------------------------------------------------------------------

    def is_low(self, name: str) -> bool:
        return bool(self.levels.get(name, False))

    def variant(self, name: str) -> Cell:
        """The cell implementing ``name`` at its current voltage."""
        cache = self._variant_cache
        if cache is not None:
            cell = cache.get(name)
            if cell is not None:
                return cell
        node = self.network.nodes[name]
        if node.cell is None:
            raise ValueError(f"node {name!r} is not mapped to a cell")
        cell = node.cell if not self.is_low(name) else (
            self.low_variant_of(node.cell)
        )
        if cache is not None:
            cache[name] = cell
        return cell

    def low_variant_of(self, cell: Cell) -> Cell:
        """The Vlow twin of a Vhigh cell (cached)."""
        if self.library.vdd_low is None:
            raise ValueError("library has no low-voltage cells")
        key = (cell.name, self.library.vdd_low)
        twin = self._twin_cache.get(key)
        if twin is None:
            twin = self.library.twin(cell, self.library.vdd_low)
            self._twin_cache[key] = twin
        return twin

    # ------------------------------------------------------------------
    # Net loads
    # ------------------------------------------------------------------

    def reader_pin_cap(self, driver: str, reader: str) -> float:
        """Capacitance the ``driver -> reader`` connection presents.

        Sums every pin of ``reader`` fed by ``driver`` (a gate may read
        the same signal more than once).  Voltage does not change pin
        capacitance, so the reader's nominal cell is consulted.
        """
        node = self.network.nodes[reader]
        return sum(
            node.cell.input_caps[pin]
            for pin, fanin in enumerate(node.fanins)
            if fanin == driver
        )

    def converted_readers(self, name: str) -> list[str]:
        """Readers of ``name`` reached through its level converter.

        One converter per *net* (the Usami [8] restoration scheme): a
        single converter on a low driver's output feeds every
        high-voltage reader, so its cost is amortized across them.
        """
        readers = [
            reader
            for reader in self.network.fanouts(name)
            if (name, reader) in self.lc_edges
        ]
        if name in self.network.outputs and (name, OUTPUT) in self.lc_edges:
            readers.append(OUTPUT)
        return readers

    def load(self, name: str) -> float:
        """Total capacitance (fF) on the net driven by ``name``."""
        cache = self._load_cache
        if cache is not None:
            cached = cache.get(name)
            if cached is not None:
                return cached
        total = 0.0
        connections = 0
        converted = 0
        for reader in self.network.fanouts(name):
            if (name, reader) in self.lc_edges:
                converted += 1
            else:
                connections += 1
                total += self.reader_pin_cap(name, reader)
        if name in self.network.outputs:
            if (name, OUTPUT) in self.lc_edges:
                converted += 1
            else:
                connections += 1
                total += self.po_load
        if converted:
            connections += 1
            total += self.lc_cell.input_caps[0]
        # A level-converting receiver's output stays inside the
        # receiving gates (Usami [8] / Wang [10]), so a materialized
        # converter node's net carries no interconnect estimate --
        # exactly what lc_load() prices for the virtual converter.
        cell = self.network.nodes[name].cell
        if cell is None or not cell.is_level_converter:
            total += self.library.wire_model.cap(connections)
        if cache is not None:
            cache[name] = total
        return total

    def lc_load(self, driver: str, reader: str = "") -> float:
        """Load on the net driven by ``driver``'s level converter.

        The Usami [8] / Wang [10] designs integrate the converter at the
        receiving gates (a level-converting receiver), so its output
        drives only the converted pins with no additional interconnect
        -- the long wire stays on the (low-swing) driver side.
        """
        total = 0.0
        for converted in self.converted_readers(driver):
            if converted == OUTPUT:
                total += self.po_load
            else:
                total += self.reader_pin_cap(driver, converted)
        return total

    # ------------------------------------------------------------------
    # Delays
    # ------------------------------------------------------------------

    def pin_delay(self, name: str, pin: int, load: float | None = None) -> float:
        """Delay from input ``pin`` to the output of gate ``name``."""
        cell = self.variant(name)
        if load is None:
            load = self.load(name)
        return cell.pin_delay(pin, load)

    def stage_delay(self, name: str, load: float | None = None) -> float:
        """Worst pin-to-output delay of gate ``name`` at its load."""
        cell = self.variant(name)
        if load is None:
            load = self.load(name)
        return cell.max_delay(load)

    def lc_delay(self, driver: str, reader: str = "") -> float:
        """Stage delay of ``driver``'s level converter (one per net)."""
        cache = self._lc_delay_cache
        if cache is not None:
            cached = cache.get(driver)
            if cached is not None:
                return cached
        delay = self.lc_cell.pin_delay(0, self.lc_load(driver))
        if cache is not None:
            cache[driver] = delay
        return delay

    def edge_extra_delay(self, driver: str, reader: str) -> float:
        """Converter delay on an edge, or 0 when no converter sits there."""
        if (driver, reader) in self.lc_edges:
            return self.lc_delay(driver, reader)
        return 0.0

    def demotion_net_change(self, name: str, lc_at_outputs: bool
                            ) -> "DemotionNetChange":
        """Hypothetical net profile if ``name`` were demoted right now.

        Low readers (and the primary output, when boundary conversion is
        off) stay directly on the driver's -- now low-swing -- net; high
        readers move onto one new converter.  Returns the driver's new
        load, the converter's output load (``None`` when no converter is
        needed), and the converter edges to record.
        """
        network = self.network
        wire = self.library.wire_model
        direct_cap = 0.0
        direct_count = 0
        converted_cap = 0.0
        new_edges: list[tuple[str, str]] = []
        for reader in network.fanouts(name):
            pin_cap = self.reader_pin_cap(name, reader)
            if self.is_low(reader):
                direct_cap += pin_cap
                direct_count += 1
            else:
                converted_cap += pin_cap
                new_edges.append((name, reader))
        if name in network.outputs:
            if lc_at_outputs:
                converted_cap += self.po_load
                new_edges.append((name, OUTPUT))
            else:
                direct_cap += self.po_load
                direct_count += 1

        connections = direct_count + (1 if new_edges else 0)
        load_after = direct_cap + wire.cap(connections)
        converter_load = None
        if new_edges:
            load_after += self.lc_cell.input_caps[0]
            converter_load = converted_cap
        return DemotionNetChange(
            load_after=load_after,
            converter_load=converter_load,
            new_edges=new_edges,
        )

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------

    def total_area(self) -> float:
        """Cell area plus converter area under the current state."""
        area = sum(
            node.cell.area
            for node in self.network.nodes.values()
            if node.cell is not None
        )
        converted_drivers = {driver for driver, _ in self.lc_edges}
        area += self.lc_cell.area * len(converted_drivers)
        return area


__all__ = ["DelayCalculator", "DemotionNetChange", "OUTPUT",
           "DEFAULT_PO_LOAD"]
