"""One keyed cache for the flow's expensive, reusable artifacts.

Three things dominate a cold flow run and are pure functions of a few
config fields, so they are worth keeping hot across runs:

* the characterized **library** + its :class:`MatchTable` (keyed by the
  rail set);
* the **prepared circuit** -- the optimize / map / constrain prefix
  (keyed by circuit, rail set, slack factor, and the preparation
  options).

Historically every consumer grew its own ad-hoc dict (the campaign
workers' module-level caches, every script's locals).  They collapse
into :class:`PreparedCache`: one keyed, eviction-pluggable,
hit/miss-counted cache that :meth:`Flow.prepare()
<repro.api.flow.Flow.prepare>` consults when constructed with
``cache=``, the campaign workers share per process, and the serving
daemon (:mod:`repro.serve`) keeps hot across requests behind a memory
cap.

Eviction applies to prepared circuits only (libraries are few and
small; they stay pinned until :meth:`PreparedCache.clear`).  Entry
sizes are estimated from the pickled representation -- measured once
per insert, cached on the entry, and only when a byte cap is actually
active (an unbounded cache never pays the pickle) -- so the
``max_bytes`` cap tracks what a worker would actually hold; the cap is
advisory for a single entry (the newest entry always stays, otherwise a
cache smaller than one circuit could never serve it).

The batch campaign keeps its historical memory profile by constructing
the cache with ``retain_prepared=False``: every group is dispatched
once per campaign, so the runner evicts each prepared circuit as soon
as its group is done.  The daemon flips retention on and lets the LRU
policy decide instead.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.api.config import FlowConfig
    from repro.api.flow import PreparedCircuit


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PreparedCache`.

    ``hits`` / ``misses`` count prepared-circuit lookups, the cache's
    expensive section; ``library_hits`` / ``library_misses`` count the
    (library, match table) section.  ``bytes`` is the estimated size of
    the retained prepared circuits.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    library_hits: int = 0
    library_misses: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "library_hits": self.library_hits,
            "library_misses": self.library_misses,
            "entries": self.entries,
            "bytes": self.bytes,
        }

    def add(self, other: dict[str, Any]) -> None:
        """Fold another cache's ``as_dict`` into this one (aggregation
        across the daemon's worker processes)."""
        self.hits += int(other.get("hits", 0))
        self.misses += int(other.get("misses", 0))
        self.evictions += int(other.get("evictions", 0))
        self.library_hits += int(other.get("library_hits", 0))
        self.library_misses += int(other.get("library_misses", 0))
        self.entries += int(other.get("entries", 0))
        self.bytes += int(other.get("bytes", 0))


class EvictionPolicy:
    """Order-keeping strategy deciding which cached entry dies first.

    The cache calls :meth:`record` on every insert *and* every hit,
    :meth:`forget` when an entry leaves, and :meth:`victim` when it
    must shed one.  Subclass and pass an instance (or register a name
    in :data:`EVICTION_POLICIES`) to plug in a different strategy.
    """

    name = "base"

    def __init__(self) -> None:
        self._order: OrderedDict[Any, None] = OrderedDict()

    def record(self, key: Any) -> None:
        raise NotImplementedError

    def forget(self, key: Any) -> None:
        self._order.pop(key, None)

    def victim(self) -> Any:
        """The key to evict next (the oldest under this policy)."""
        return next(iter(self._order))


class LRUPolicy(EvictionPolicy):
    """Least-recently-used: a hit refreshes an entry's lease."""

    name = "lru"

    def record(self, key: Any) -> None:
        self._order.pop(key, None)
        self._order[key] = None


class FIFOPolicy(EvictionPolicy):
    """Insertion order only: hits do not refresh an entry's lease."""

    name = "fifo"

    def record(self, key: Any) -> None:
        if key not in self._order:
            self._order[key] = None


EVICTION_POLICIES: dict[str, type[EvictionPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
}


def _make_policy(policy: str | EvictionPolicy) -> EvictionPolicy:
    if isinstance(policy, EvictionPolicy):
        return policy
    try:
        return EVICTION_POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {policy!r}; registered policies: "
            f"{sorted(EVICTION_POLICIES)}"
        ) from None


def _estimate_bytes(value: Any) -> int:
    """A deterministic size estimate: the pickled representation.

    Pickling is what a prepared circuit costs to hold or ship, and it
    is stable across runs (unlike ``sys.getsizeof``, which ignores the
    object graph entirely).
    """
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 1 << 20  # unpicklable oddity: charge it 1 MiB


@dataclass
class _Entry:
    value: Any
    size: int = 0


@dataclass
class PreparedCache:
    """Keyed cache of built libraries and prepared circuits.

    ``max_bytes`` caps the estimated memory of *retained prepared
    circuits* (``None`` = unbounded); ``policy`` picks the eviction
    order (``"lru"`` default, ``"fifo"``, or an
    :class:`EvictionPolicy` instance); ``retain_prepared=False``
    disables cross-call retention of prepared circuits entirely -- the
    consumer evicts explicitly (the batch campaign's one-shot groups).

    Not thread-safe: each campaign worker process and the daemon's
    workers hold their own instance.
    """

    max_bytes: int | None = None
    policy: str | EvictionPolicy = "lru"
    retain_prepared: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._policy = _make_policy(self.policy)
        self._libraries: dict[tuple[float, ...], tuple[Any, Any]] = {}
        self._prepared: dict[Any, _Entry] = {}

    # -- libraries ---------------------------------------------------

    def library(self, rail_key: tuple[float, ...]) -> tuple[Any, Any]:
        """The (library, match table) pair for one rail set.

        ``rail_key`` follows the campaign convention: the full ordered
        rail set for an MSV run, ``(vdd_low,)`` for classic dual-Vdd.
        Built on first use, pinned until :meth:`clear`.
        """
        rail_key = tuple(float(v) for v in rail_key)
        pair = self._libraries.get(rail_key)
        if pair is not None:
            self.stats.library_hits += 1
            return pair
        self.stats.library_misses += 1
        from repro.library.compass import build_compass_library
        from repro.mapping.match import MatchTable

        if len(rail_key) == 1:
            library = build_compass_library(vdd_low=rail_key[0])
        else:
            library = build_compass_library(rails=rail_key)
        pair = (library, MatchTable(library))
        self._libraries[rail_key] = pair
        return pair

    # -- prepared circuits -------------------------------------------

    @staticmethod
    def prepared_key(config: FlowConfig) -> tuple:
        """What a prepared circuit is keyed on: everything the
        optimize/map/constrain prefix depends on (and nothing the
        per-method suffix varies)."""
        from dataclasses import asdict

        return (
            config.circuit,
            config.rail_key,
            config.slack_factor,
            tuple(sorted(asdict(config.options).items())),
        )

    def prepared(
        self,
        config: FlowConfig,
        build: Callable[[], PreparedCircuit],
        size: int | None = None,
    ) -> PreparedCircuit:
        """The prepared circuit for ``config``, building on a miss.

        Sizing is lazy: an unbounded cache (``max_bytes=None``, the
        campaign workers and plain flows) never pickles the value, so
        large generated circuits skip the serialize-per-insert tax
        entirely.  A byte-capped cache (the daemon) measures the entry
        once on insert and keeps the number on the entry -- or reuses
        ``size`` when the caller already has the pickled byte count in
        hand (e.g. a daemon that just shipped the same object).
        """
        key = self.prepared_key(config)
        entry = self._prepared.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._policy.record(key)
            return entry.value
        self.stats.misses += 1
        value = build()
        if size is None:
            size = _estimate_bytes(value) if self.max_bytes is not None else 0
        entry = _Entry(value=value, size=size)
        self._prepared[key] = entry
        self.stats.entries = len(self._prepared)
        self.stats.bytes += entry.size
        self._policy.record(key)
        self._shed(protect=key)
        return value

    def evict_prepared(self, config: FlowConfig) -> bool:
        """Explicitly drop one prepared circuit (the batch runner's
        group-is-done hook).  Returns whether it was present."""
        return self._pop(self.prepared_key(config), count_eviction=False)

    def _pop(self, key: Any, count_eviction: bool) -> bool:
        entry = self._prepared.pop(key, None)
        if entry is None:
            return False
        self._policy.forget(key)
        self.stats.bytes -= entry.size
        self.stats.entries = len(self._prepared)
        if count_eviction:
            self.stats.evictions += 1
        return True

    def _shed(self, protect: Any) -> None:
        """Evict under the byte cap; never evicts ``protect`` (the
        entry just inserted -- the cap is advisory for a lone entry
        bigger than the whole budget)."""
        if self.max_bytes is None:
            return
        while self.stats.bytes > self.max_bytes and len(self._prepared) > 1:
            key = self._policy.victim()
            if key == protect:
                # Re-record moves it behind the other candidates.
                self._policy.record(key)
                continue
            self._pop(key, count_eviction=True)

    # -- maintenance -------------------------------------------------

    def clear(self) -> None:
        """Drop everything (libraries included); counters survive."""
        for key in list(self._prepared):
            self._pop(key, count_eviction=False)
        self._libraries.clear()

    def __len__(self) -> int:
        return len(self._prepared)


__all__ = [
    "EVICTION_POLICIES",
    "CacheStats",
    "EvictionPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "PreparedCache",
]
