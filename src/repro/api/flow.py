"""The composable flow: named, swappable stages behind one front door.

A :class:`Flow` executes the paper's pipeline as six named stages --

    optimize -> map -> constrain -> scale -> restore -> measure

-- driven by one declarative :class:`~repro.api.config.FlowConfig`.
Every stage is a plain callable over the shared :class:`FlowContext`,
and :meth:`Flow.with_stage` swaps any of them, so a placement-aware
cost model or a different constraint policy is a function, not a fork
of the pipeline.  The ``scale`` stage dispatches through the
:mod:`~repro.api.registry`, so new algorithms plug in by name.

Entry points, from highest to lowest level:

* :meth:`Flow.run` -- the whole pipeline on ``config.circuit`` (or a
  given network), returning a :class:`~repro.api.artifact.RunArtifact`.
* :meth:`Flow.prepare` + :meth:`Flow.run(prepared=...)` -- split the
  expensive optimize/map/constrain prefix from the per-method suffix;
  one :class:`PreparedCircuit` serves every method (this is what the
  campaign workers cache).
* :meth:`Flow.scale` -- enter at the ``scale`` stage with an
  already-mapped network and an explicit timing budget (the old
  ``scale_voltage`` contract).
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.api.artifact import RunArtifact, ScalingReport
from repro.api.cache import PreparedCache
from repro.api.config import FlowConfig
from repro.api.registry import get_method
from repro.core.restore import MaterializedDesign, materialize_converters
from repro.core.state import ScalingState
from repro.library.cells import Library
from repro.mapping.mapper import map_network, recover_area, speed_up_sizing
from repro.mapping.match import MatchTable
from repro.netlist.network import Network
from repro.power.activity import Activity, random_activities
from repro.timing.delay import DelayCalculator
from repro.timing.sta import TimingAnalysis

STAGES = ("optimize", "map", "constrain", "scale", "restore", "measure")
"""Stage execution order.  ``prepare()`` runs the first three;
``run(prepared=...)`` and ``scale()`` run the last three."""

_PREPARE_STAGES = STAGES[:3]
_RUN_STAGES = STAGES[3:]


@dataclass
class PreparedCircuit:
    """A mapped circuit ready for voltage scaling."""

    name: str
    network: Network
    tspec: float
    min_delay: float
    activity: Activity

    def fresh_copy(self) -> Network:
        return self.network.copy()


@dataclass
class FlowContext:
    """Everything the stages share while one run is in flight."""

    config: FlowConfig
    library: Library
    match_table: MatchTable | None = None
    network: Network | None = None
    name: str = ""
    min_delay: float = 0.0
    tspec: float = 0.0
    activity: Activity | None = None
    state: ScalingState | None = None
    report: ScalingReport | None = None
    design: MaterializedDesign | None = None
    artifact: RunArtifact | None = None
    scale_runtime_s: float = 0.0


StageFn = Callable[[FlowContext], None]


# -- default stage implementations ------------------------------------
# These reproduce the paper's section-4 setup term for term; the
# rail-equivalence golden (tests/core/test_rail_equivalence.py) pins
# their arithmetic to the pre-refactor seed.


def optimize_stage(ctx: FlowContext) -> None:
    """Technology-independent optimization (``script.rugged`` stand-in)."""
    from repro.opt.script import rugged

    rugged(ctx.network)


def map_stage(ctx: FlowContext) -> None:
    """Minimum-delay technology mapping (``map -n1 -AFG``)."""
    mapped = map_network(ctx.network, ctx.library, match_table=ctx.match_table)
    mapped.name = ctx.name
    ctx.network = mapped


def constrain_stage(ctx: FlowContext) -> None:
    """Fix the timing budget: Dmin, the 20% relaxation, area recovery.

    The covering DP estimates loads, so its raw output is not the true
    minimum-delay circuit: a fanout-style speed-up sizing pass makes
    Dmin honest first, and the relaxation anchors on the achievable
    minimum (ratcheting down when recovery itself uncovers a faster
    point).  The constraint is "the delay of the mapped circuit" after
    the relaxed remap -- the algorithms start with zero slack on the
    remapped critical paths.  Switching activity is measured here so
    every method scores against the same vectors.
    """
    options = ctx.config.options
    min_delay = speed_up_sizing(
        ctx.network, ctx.library, po_load=options.po_load
    )
    achieved = min_delay
    for _ in range(4):
        budget = ctx.config.slack_factor * min_delay
        recover_area(ctx.network, ctx.library, budget, po_load=options.po_load)
        achieved = TimingAnalysis(
            DelayCalculator(ctx.network, ctx.library, po_load=options.po_load),
            budget,
        ).worst_delay
        if achieved >= min_delay - 1e-9:
            break
        min_delay = achieved
    ctx.tspec = achieved
    ctx.min_delay = min_delay
    ctx.activity = random_activities(
        ctx.network, n_vectors=options.n_vectors, seed=options.activity_seed
    )


def scale_stage(ctx: FlowContext) -> None:
    """Run the configured scaling method on a fresh :class:`ScalingState`."""
    from repro.core.moves import get_cost_model

    config = ctx.config
    method = get_method(config.method)
    if not method.multi_rail and ctx.library.n_rails > 2:
        raise ValueError(
            f"scaling method {method.name!r} handles dual-rail libraries "
            f"only, but the library has {ctx.library.n_rails} rails"
        )
    get_cost_model(config.cost_model)  # fail fast on a typo'd model name
    from repro.api.artifact import DEFAULT_COST_MODEL

    if config.cost_model != DEFAULT_COST_MODEL and not method.prices_moves:
        raise ValueError(
            f"scaling method {method.name!r} does not price moves, so "
            f"cost model {config.cost_model!r} cannot influence it; run "
            f"it under the default model instead"
        )
    state = ScalingState(
        ctx.network,
        ctx.library,
        ctx.tspec,
        activity=ctx.activity,
        options=config.options,
    )
    power_before = state.power()
    started = time.perf_counter()
    method.run(state, config)
    elapsed = time.perf_counter() - started
    power_after = state.power()
    ctx.state = state
    ctx.scale_runtime_s = elapsed
    ctx.report = ScalingReport(
        method=config.method,
        power_before_uw=power_before.total,
        power_after_uw=power_after.total,
        improvement_pct=power_after.improvement_over(power_before),
        n_gates=state.n_gates,
        n_low=state.n_low,
        low_ratio=state.low_ratio,
        n_converters=len(state.lc_edges),
        n_resized=state.n_resized,
        area_increase_ratio=state.sizing_area_increase_ratio,
        worst_delay_ns=state.timing().worst_delay,
        tspec_ns=ctx.tspec,
        runtime_s=elapsed,
        moves=state.move_stats.as_dict(),
    )


def restore_stage(ctx: FlowContext) -> None:
    """Materialize level shifters when the config asks for an export.

    Off by default: the paper's tables use the virtual converter model,
    and materialization splices real shifter nodes into a copy of the
    network (``ctx.design``) for downstream physical flows.
    """
    if ctx.config.materialize:
        ctx.design = materialize_converters(ctx.state)


def measure_stage(ctx: FlowContext) -> None:
    """Assemble the unified :class:`RunArtifact` from the run's context."""
    config = ctx.config
    gates = sum(1 for n in ctx.network.nodes.values() if not n.is_input)
    ctx.artifact = RunArtifact(
        circuit=config.circuit or ctx.name,
        method=config.method,
        vdd_low=config.vdd_low,
        slack_factor=config.slack_factor,
        rails=config.rails,
        cost_model=config.cost_model,
        status="ok",
        gates=gates,
        org_power_uw=ctx.report.power_before_uw,
        min_delay_ns=ctx.min_delay,
        tspec_ns=ctx.tspec,
        report=ctx.report,
        runtime_s=ctx.scale_runtime_s,
    )


DEFAULT_STAGES: dict[str, StageFn] = {
    "optimize": optimize_stage,
    "map": map_stage,
    "constrain": constrain_stage,
    "scale": scale_stage,
    "restore": restore_stage,
    "measure": measure_stage,
}


class Flow:
    """One configured pipeline instance; cheap to copy, safe to share.

    The library and match table build lazily from the config (or are
    injected for sharing across flows -- the campaign workers pass
    their per-rail-key caches).  ``replace()`` derives a sibling flow
    with config changes, keeping the built library when the rail set is
    unchanged; ``with_stage()`` derives a sibling with one stage
    swapped.

    ``cache`` plugs in a :class:`~repro.api.cache.PreparedCache`: the
    library resolves through it (shared per rail set) and
    :meth:`prepare` consults it before running the expensive prefix
    stages -- this is how the campaign workers and the serving daemon
    keep circuits hot.  The cache keys on the default prepare stages,
    so :meth:`with_stage` siblings deliberately drop it (a custom
    ``optimize``/``map``/``constrain`` stage would poison shared
    entries); :meth:`replace` siblings keep it.
    """

    def __init__(
        self,
        config: FlowConfig,
        *,
        library: Library | None = None,
        match_table: MatchTable | None = None,
        stages: dict[str, StageFn] | None = None,
        cache: PreparedCache | None = None,
    ):
        self.config = config
        self._library = library
        self._match_table = match_table
        self._cache = cache
        self.stages: dict[str, StageFn] = dict(DEFAULT_STAGES)
        if stages:
            unknown = sorted(set(stages) - set(DEFAULT_STAGES))
            if unknown:
                raise ValueError(
                    f"unknown stage(s) {unknown}; stages are {STAGES}"
                )
            self.stages.update(stages)

    # -- construction helpers ---------------------------------------

    @classmethod
    def from_json(cls, text: str, **kwargs) -> Flow:
        return cls(FlowConfig.loads(text), **kwargs)

    @classmethod
    def from_toml(cls, text: str, **kwargs) -> Flow:
        return cls(FlowConfig.from_toml(text), **kwargs)

    @property
    def library(self) -> Library:
        if self._library is None:
            if self._cache is not None:
                self._library, self._match_table = self._cache.library(
                    self.config.rail_key
                )
            else:
                self._library = self.config.build_library()
        return self._library

    @property
    def match_table(self) -> MatchTable | None:
        return self._match_table

    def replace(self, **changes) -> Flow:
        """A sibling flow with config changes applied.

        The built library and match table carry over when the change
        does not touch the rail set (method / circuit / knob changes),
        so per-method flows over one prepared circuit stay cheap.
        """
        new_config = self.config.replace(**changes)
        same_rails = new_config.rail_key == self.config.rail_key
        return Flow(
            new_config,
            library=self._library if same_rails else None,
            match_table=self._match_table if same_rails else None,
            stages=self.stages,
            cache=self._cache,
        )

    def with_stage(self, name: str, fn: StageFn) -> Flow:
        """A sibling flow with one named stage swapped for ``fn``."""
        if name not in DEFAULT_STAGES:
            raise ValueError(f"unknown stage {name!r}; stages are {STAGES}")
        return Flow(
            self.config,
            library=self._library,
            match_table=self._match_table,
            stages={**self.stages, name: fn},
        )

    # -- execution ---------------------------------------------------

    def _context(self) -> FlowContext:
        return FlowContext(
            config=self.config,
            library=self.library,
            match_table=self._match_table,
        )

    def _load(self, source: str | Network | None) -> Network:
        if source is None:
            source = self.config.circuit
        if isinstance(source, Network):
            return source
        if not source:
            raise ValueError(
                "FlowConfig.circuit is empty and no source network was given"
            )
        if os.path.exists(source):
            from repro.netlist.blif import read_blif

            return read_blif(source)
        from repro.bench.mcnc import load_circuit

        return load_circuit(source)

    def prepare(self, source: str | Network | None = None) -> PreparedCircuit:
        """Run optimize / map / constrain; the result serves every method.

        With a ``cache``, a named-circuit preparation (``source`` is
        ``None`` and ``config.circuit`` names the benchmark/BLIF path)
        resolves through :meth:`PreparedCache.prepared
        <repro.api.cache.PreparedCache.prepared>`; an in-memory source
        network always prepares fresh (its identity is not a cache
        key).
        """
        if (
            self._cache is not None
            and source is None
            and self.config.circuit
            and self.stages["optimize"] is optimize_stage
            and self.stages["map"] is map_stage
            and self.stages["constrain"] is constrain_stage
        ):
            return self._cache.prepared(self.config, self._prepare_fresh)
        return self._prepare_fresh(source)

    def _prepare_fresh(
        self, source: str | Network | None = None
    ) -> PreparedCircuit:
        ctx = self._context()
        ctx.network = self._load(source)
        ctx.name = ctx.network.name
        for stage in _PREPARE_STAGES:
            self.stages[stage](ctx)
        # The prepared network's adjacency/topological caches are hit by
        # every downstream method; build them once here so they are
        # shared (and so cache hits hand out a pre-warmed network).
        ctx.network.warm_caches()
        return PreparedCircuit(
            name=ctx.name,
            network=ctx.network,
            tspec=ctx.tspec,
            min_delay=ctx.min_delay,
            activity=ctx.activity,
        )

    def execute(
        self,
        source: str | Network | None = None,
        *,
        prepared: PreparedCircuit | None = None,
    ) -> FlowContext:
        """Run the full pipeline and return the final stage context.

        Use this instead of :meth:`run` when you need more than the
        artifact -- the live :class:`ScalingState` or the materialized
        design.  ``prepared`` skips the prefix stages; the scaling
        always works on a fresh copy, so one prepared circuit serves
        many methods.
        """
        if prepared is None:
            prepared = self.prepare(source)
        ctx = self._context()
        ctx.network = prepared.fresh_copy()
        ctx.name = prepared.name
        ctx.min_delay = prepared.min_delay
        ctx.tspec = prepared.tspec
        ctx.activity = prepared.activity
        for stage in _RUN_STAGES:
            self.stages[stage](ctx)
        return ctx

    def run(
        self,
        source: str | Network | None = None,
        *,
        prepared: PreparedCircuit | None = None,
    ) -> RunArtifact:
        """The full pipeline; returns the unified result artifact."""
        return self.execute(source, prepared=prepared).artifact

    def scale(
        self,
        network: Network,
        tspec: float,
        *,
        activity: Activity | None = None,
    ) -> tuple[ScalingState, RunArtifact]:
        """Enter at the ``scale`` stage with an already-mapped network.

        The network is modified in place only by Gscale's gate
        resizing; voltage levels and converters stay in the returned
        state (set ``config.materialize`` or call
        :func:`~repro.core.restore.materialize_converters` to export).
        """
        ctx = self._context()
        ctx.network = network
        ctx.name = network.name
        ctx.tspec = tspec
        ctx.activity = activity
        for stage in _RUN_STAGES:
            self.stages[stage](ctx)
        return ctx.state, ctx.artifact


__all__ = [
    "DEFAULT_STAGES",
    "STAGES",
    "Flow",
    "FlowContext",
    "PreparedCircuit",
    "constrain_stage",
    "map_stage",
    "measure_stage",
    "optimize_stage",
    "restore_stage",
    "scale_stage",
]
