"""Event-driven timed simulation (glitch) tests."""

import pytest

from repro.netlist.network import Network
from repro.power.activity import random_activities
from repro.power.simulate import glitch_factor, timed_toggle_counts
from repro.timing.delay import DelayCalculator


def test_inverter_chain_has_no_glitches(library):
    net = Network()
    net.add_input("a")
    cell = library.cell("inv_d0")
    prev = "a"
    for k in range(4):
        name = f"inv{k}"
        net.add_node(name, [prev], cell.function, cell)
        prev = name
    net.set_output(prev)
    calculator = DelayCalculator(net, library)
    timed = timed_toggle_counts(net, calculator, n_vectors=128, seed=1)
    zero_delay = random_activities(net, n_vectors=128, seed=1)
    # A single path cannot glitch: timed == zero-delay per net.
    for k in range(4):
        assert timed[f"inv{k}"] == pytest.approx(
            zero_delay.toggles[f"inv{k}"]
        )


def test_unbalanced_xor_glitches(library):
    """x = a xor delayed(a-path) produces extra transitions.

    Classic glitch generator: one xor input goes through a long
    inverter chain, so input changes race and the xor output toggles
    more often under timed simulation than zero-delay analysis admits.
    """
    net = Network()
    net.add_input("a")
    net.add_input("b")
    inv = library.cell("inv_d0")
    xor2 = library.cell("xor2_d0")
    and2 = library.cell("and2_d0")
    prev = "b"
    for k in range(6):
        name = f"d{k}"
        net.add_node(name, [prev], inv.function, inv)
        prev = name
    net.add_node("mix", ["a", "b"], and2.function, and2)
    net.add_node("x", ["mix", prev], xor2.function, xor2)
    net.set_output("x")
    calculator = DelayCalculator(net, library)
    timed = timed_toggle_counts(net, calculator, n_vectors=512, seed=3)
    zero_delay = random_activities(net, n_vectors=512, seed=3)
    assert timed["x"] >= zero_delay.toggles["x"] - 1e-9


def test_glitch_factor_at_least_one_on_average(mapped_adder, library):
    calculator = DelayCalculator(mapped_adder, library)
    timed = timed_toggle_counts(mapped_adder, calculator, n_vectors=128,
                                seed=7)
    zero_delay = random_activities(mapped_adder, n_vectors=128, seed=7)
    factor = glitch_factor(zero_delay.toggles, timed)
    assert factor >= 0.95  # ripple adders glitch; never materially below


def test_deterministic(mapped_adder, library):
    calculator = DelayCalculator(mapped_adder, library)
    a = timed_toggle_counts(mapped_adder, calculator, n_vectors=32, seed=5)
    b = timed_toggle_counts(mapped_adder, calculator, n_vectors=32, seed=5)
    assert a == b


def test_needs_two_vectors(mapped_adder, library):
    calculator = DelayCalculator(mapped_adder, library)
    with pytest.raises(ValueError):
        timed_toggle_counts(mapped_adder, calculator, n_vectors=1)


def test_glitch_factor_of_empty_activity():
    assert glitch_factor({}, {}) == 1.0


def test_frozen_inputs_produce_no_activity(mapped_adder, library):
    calculator = DelayCalculator(mapped_adder, library)
    frozen = timed_toggle_counts(mapped_adder, calculator, n_vectors=16,
                                 seed=11, input_probability=0.0)
    assert all(rate == 0.0 for rate in frozen.values())


def test_always_on_inputs_settle_after_first_cycle(mapped_adder, library):
    calculator = DelayCalculator(mapped_adder, library)
    rates = timed_toggle_counts(mapped_adder, calculator, n_vectors=64,
                                seed=11, input_probability=1.0)
    # After the first vector every input is constant 1: nothing toggles.
    for name in mapped_adder.inputs:
        assert rates[name] == 0.0
    assert sum(rates.values()) == pytest.approx(0.0)


def test_converter_edges_fold_into_timed_simulation(mapped_adder, library):
    """A demoted driver's converter stage delay rides on its reader
    edges (edge_extra_delay > 0) without breaking event ordering."""
    from repro.core.state import ScalingState

    state = ScalingState(mapped_adder, library, tspec=1e9)
    gates = list(mapped_adder.gates())
    driver = next(g for g in gates if mapped_adder.fanouts(g))
    state.demote(driver)
    calculator = state.calc
    reader = next(iter(mapped_adder.fanouts(driver)))
    assert calculator.edge_extra_delay(driver, reader) > 0.0
    timed = timed_toggle_counts(mapped_adder, calculator, n_vectors=64,
                                seed=13)
    plain = timed_toggle_counts(
        mapped_adder, DelayCalculator(mapped_adder, library),
        n_vectors=64, seed=13,
    )
    # Same logic, same vectors: total activity stays plausible; only
    # event timing (and hence glitching) may shift.
    assert set(timed) == set(plain)
    assert all(rate >= 0.0 for rate in timed.values())


def test_glitch_factor_against_partial_overlap():
    assert glitch_factor({"a": 2.0}, {"a": 3.0}) == pytest.approx(1.5)
