"""Gscale: creating new timing slack by separator-guided gate sizing.

The paper's second contribution (section 3).  Gscale keeps the CVS
cluster restriction (no converters inside the logic) but, instead of
stopping when the existing slack is spent, *creates* slack: it finds the
critical-path network (CPN) feeding the time-critical boundary (TCB),
weights every CPN gate by area-penalty-per-unit-of-timing-gain for a
one-step upsize, picks a minimum-weight separator so that every path
into the TCB is sped up exactly once, resizes those gates, and re-runs
CVS to push the TCB toward the primary inputs.  The loop stops after
``max_iter`` consecutive pushes fail to move the TCB (the paper uses
ten) or when the area budget (the paper uses +10%) is exhausted.

Gscale is a move-selection policy over :mod:`repro.core.moves`: every
separator resize is a transactional :class:`ResizeMove` -- the engine
re-times only the mutated cone and a rejected upsize is restored from
the timing journal -- and the CVS follow-ups route their demotions
through the same engine, so the state's move statistics cover the whole
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cvs import CvsResult, run_cvs
from repro.core.moves import MoveEngine, ResizeMove, demoted_arrival
from repro.core.state import ScalingState
from repro.graphalg.separator import min_weight_separator
from repro.timing.delay import OUTPUT
from repro.timing.incremental import IncrementalTiming
from repro.timing.sta import TimingAnalysis

_WEIGHT_SCALE = 1000
_UNRESIZABLE = 10**9
"""Separator weight for gates that cannot (usefully) grow."""

DEFAULT_MAX_ITER = 10
DEFAULT_AREA_BUDGET = 0.10


@dataclass
class GscaleResult:
    """Outcome of a Gscale run."""

    initial_cvs: CvsResult
    iterations: int = 0
    failed_pushes: int = 0
    demoted: list[str] = field(default_factory=list)
    resized: list[str] = field(default_factory=list)
    final_tcb: frozenset[str] = frozenset()


def demotion_shortfall(
    state: ScalingState,
    analysis: TimingAnalysis | IncrementalTiming,
    name: str,
) -> float:
    """How much earlier ``name``'s inputs must arrive to allow demotion.

    Positive for TCB members; their CVS check failed by this margin.
    """
    network = state.network
    calc = state.calc
    target = state.rail_of(name) + 1
    change = calc.demotion_net_change(name, state.options.lc_at_outputs)

    out_arrival = demoted_arrival(
        state, name, target, analysis.arrival, change.load_after
    )
    deadline = analysis.required[name]
    if name in network.outputs and (name, OUTPUT) in change.new_edges:
        po_extra = calc.new_converter_delays(change)[0]
        deadline = min(deadline, state.tspec - po_extra)
    return out_arrival - deadline


def resize_profile(
    state: ScalingState,
    analysis: TimingAnalysis | IncrementalTiming,
    name: str,
) -> tuple[float, float, float] | None:
    """(area penalty, net timing gain, worst driver penalty) of an upsize.

    Returns ``None`` when no larger variant exists.  The net gain is the
    gate's own stage-delay improvement minus the worst slowdown its
    increased input capacitance inflicts on any one driver (both effects
    land on a shared path in the worst case).
    """
    node = state.network.nodes[name]
    bigger = state.library.variants(node.cell.base)
    candidate = None
    for variant in bigger:
        if variant.size == node.cell.size + 1:
            candidate = variant
            break
    if candidate is None:
        return None

    calc = state.calc
    load = calc.load(name)
    current = calc.variant(name)
    upsized = calc.rail_variant_of(candidate, state.rail_of(name))
    own_gain = current.max_delay(load) - upsized.max_delay(load)

    driver_penalty = 0.0
    for pin, fanin in enumerate(node.fanins):
        driver = state.network.nodes[fanin]
        if driver.is_input:
            continue  # inputs are ideal drivers in this model
        delta_cap = candidate.input_caps[pin] - node.cell.input_caps[pin]
        penalty = calc.variant(fanin).drive_res * delta_cap
        driver_penalty = max(driver_penalty, penalty)

    area_penalty = candidate.area - node.cell.area
    return area_penalty, own_gain - driver_penalty, driver_penalty


def get_cpn(
    state: ScalingState,
    analysis: TimingAnalysis | IncrementalTiming,
    tcb: frozenset[str],
) -> tuple[list[str], list[tuple[str, str]], list[str], list[str]]:
    """The critical-path network feeding the TCB.

    Returns (nodes, edges, sources, sinks): the gates inside the TCB's
    transitive fanin whose slack is within the demotion shortfall window,
    the fanin edges among them, the entry nodes, and the TCB sinks.
    """
    network = state.network
    shortfalls = [
        analysis.slack(t) + demotion_shortfall(state, analysis, t) for t in tcb
    ]
    window = max(shortfalls, default=0.0) + state.options.timing_tolerance

    # Order the fanin cone topologically by cached position instead of
    # filtering the whole network's order: O(|cone| log |cone|), and the
    # resulting sequence is identical to the full-order filter.
    cone = network.transitive_fanin(tcb)
    position = network.topo_index()
    arrays = getattr(analysis, "levelized_arrays", None)
    if arrays is not None:
        # Slack via the engine's levelized planes: the same
        # required[i] - arrival[i] subtraction analysis.slack performs,
        # without the per-name staleness check and dict chain.
        _, arrival, required, _ = arrays()
        flat = state.flat()
        is_input = flat.is_input
        nodes = []
        for name in sorted(cone, key=position.__getitem__):
            i = position[name]
            if not is_input[i] and required[i] - arrival[i] <= window:
                nodes.append(name)
    else:
        nodes = [
            name
            for name in sorted(cone, key=position.__getitem__)
            if not network.nodes[name].is_input
            and analysis.slack(name) <= window
        ]
    node_set = set(nodes)
    edges = [
        (fanin, name)
        for name in nodes
        for fanin in network.nodes[name].fanins
        if fanin in node_set
    ]
    has_cpn_fanin = {v for _, v in edges}
    sources = [name for name in nodes if name not in has_cpn_fanin]
    sinks = [name for name in nodes if name in tcb]
    return nodes, edges, sources, sinks


def run_gscale(
    state: ScalingState,
    max_iter: int = DEFAULT_MAX_ITER,
    area_budget: float = DEFAULT_AREA_BUDGET,
) -> GscaleResult:
    """The full Gscale loop of the paper's section 3 pseudo-code."""
    engine = MoveEngine(state)
    initial = run_cvs(state)
    result = GscaleResult(initial_cvs=initial)
    result.demoted.extend(initial.demoted)
    tcb = initial.tcb
    sizing_budget = state.initial_area * area_budget
    counter = 0

    # No-harm fallback: if sizing ends up costing more power than the
    # plain CVS cluster saved (possible on sizing-hostile circuits; the
    # paper's Gscale column is never below its CVS column), restore this
    # snapshot at the end.
    snapshot_levels = dict(state.levels)
    snapshot_lc_edges = set(state.lc_edges)
    snapshot_cells = {
        name: node.cell
        for name, node in state.network.nodes.items()
        if node.cell is not None
    }
    snapshot_power = state.power().total

    while tcb and state.sizing_area_delta < sizing_budget - 1e-12:
        analysis = state.timing()
        nodes, edges, sources, sinks = get_cpn(state, analysis, tcb)

        weights: dict[str, int] = {}
        profiles: dict[str, tuple[float, float, float]] = {}
        # One batched pricing sweep over the whole CPN (bit-identical
        # to the serial resize_profile per name, vectorized when NumPy
        # is importable).
        for name, profile in zip(nodes, engine.profile_resizes(nodes)):
            if profile is None or profile[1] <= 0:
                weights[name] = _UNRESIZABLE
                continue
            area_penalty, net_gain, _ = profile
            profiles[name] = profile
            weights[name] = max(
                1, int(round(area_penalty / net_gain * _WEIGHT_SCALE))
            )

        cut: list[str] = []
        if nodes and sources and sinks:
            cut, _ = min_weight_separator(
                nodes, edges, weights, sources, sinks
            )

        # Apply the separator's resizes one by one, each a transactional
        # ResizeMove: an upsize speeds the resized stage but loads its
        # drivers, and on zero-slack logic only the measured circuit can
        # arbitrate that trade.  Only the resized gate's cone is
        # re-timed per attempt, and a rejected upsize is rolled back
        # from the journal instead of re-propagated.
        applied: list[str] = []
        worst_before = analysis.worst_delay
        for name in cut:
            if name not in profiles:
                continue
            node = state.network.nodes[name]
            bigger = None
            for variant in state.library.variants(node.cell.base):
                if variant.size == node.cell.size + 1:
                    bigger = variant
                    break
            if bigger is None:
                continue
            growth = bigger.area - node.cell.area
            if state.sizing_area_delta + growth > sizing_budget:
                continue
            if engine.try_move(
                ResizeMove(name, bigger),
                worst_delay_cap=worst_before + 1e-12,
            ):
                worst_before = engine.last_worst_delay
                applied.append(name)
        result.resized.extend(applied)

        follow_up = run_cvs(state)
        result.demoted.extend(follow_up.demoted)
        result.iterations += 1
        new_tcb = follow_up.tcb
        if new_tcb == tcb:
            counter += 1
            result.failed_pushes += 1
        else:
            counter = 0
        # Fixed point: no resize stuck, CVS demoted nothing, TCB is
        # unchanged -- the iteration left the state bit-identical, so
        # every further iteration is provably identical too.  Burning
        # the remaining max_iter retries cannot change the outcome.
        at_fixed_point = (
            not applied and not follow_up.demoted and new_tcb == tcb
        )
        tcb = new_tcb
        if counter > max_iter or at_fixed_point:
            break

    if state.power().total > snapshot_power:
        state.levels.clear()
        state.levels.update(snapshot_levels)
        state.lc_edges.clear()
        state.lc_edges.update(snapshot_lc_edges)
        for name, cell in snapshot_cells.items():
            if state.network.nodes[name].cell is not cell:
                state.resize(name, cell)
        result.demoted = list(initial.demoted)
        result.resized = []
        tcb = initial.tcb

    result.final_tcb = tcb
    state.validate()
    return result


__all__ = [
    "GscaleResult",
    "demotion_shortfall",
    "resize_profile",
    "get_cpn",
    "run_gscale",
]
