"""Exact two-level minimization (Quine-McCluskey).

Node functions in this flow are small (library cells top out at five
inputs; optimizer nodes are kept under ten), so the exact method is
affordable and sidesteps espresso's heuristics entirely: prime implicant
generation by iterated merging, then an essential-prime extraction with a
greedy completion of the cover.
"""

from __future__ import annotations

from repro.netlist.functions import TruthTable
from repro.netlist.network import Network

_QM_LIMIT = 9
"""Maximum input count for exact minimization; wider functions use the
greedy expand cover (espresso-style), which is prime but not minimal."""


def _cube_string(n: int, spec: int, value: int) -> str:
    """Render an integer cube (specified-mask, values) as 0/1/- text."""
    chars = []
    for k in range(n):
        if not spec >> k & 1:
            chars.append("-")
        elif value >> k & 1:
            chars.append("1")
        else:
            chars.append("0")
    return "".join(chars)


def prime_implicants(table: TruthTable) -> list[str]:
    """All prime implicants of the function, as cube strings.

    Classic Quine-McCluskey merging, but on integer cubes grouped by
    (specified-variable mask, ones count): two cubes can only merge when
    they specify the same variables and their values differ in exactly
    one bit, so grouping eliminates almost all candidate pairs.
    """
    n = table.n_inputs
    full = (1 << n) - 1
    current = {(full, row) for row in table.minterms()}
    primes: set[tuple[int, int]] = set()
    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for spec, value in current:
            key = (spec, bin(value).count("1"))
            groups.setdefault(key, []).append((spec, value))
        for (spec, ones), group in groups.items():
            uppers = groups.get((spec, ones + 1), ())
            for cube in group:
                for upper in uppers:
                    difference = cube[1] ^ upper[1]
                    if difference & (difference - 1):
                        continue
                    merged.add((spec & ~difference, cube[1] & ~difference))
                    used.add(cube)
                    used.add(upper)
        primes.update(current - used)
        current = merged
    return sorted(_cube_string(n, spec, value) for spec, value in primes)


def _cube_minterms(cube: str) -> list[int]:
    free = [k for k, ch in enumerate(cube) if ch == "-"]
    base = 0
    for k, ch in enumerate(cube):
        if ch == "1":
            base |= 1 << k
    rows = []
    for choice in range(1 << len(free)):
        row = base
        for i, k in enumerate(free):
            if choice >> i & 1:
                row |= 1 << k
        rows.append(row)
    return rows


def _expand_cover(table: TruthTable) -> list[str]:
    """Greedy espresso-style cover for wide functions.

    Each uncovered minterm is expanded to a prime cube by dropping
    variables while the cube stays inside the on-set; fast and prime,
    though not guaranteed minimal like the QM path.
    """
    n = table.n_inputs
    bits = table.bits
    cover: list[str] = []
    remaining = set(table.minterms())
    while remaining:
        row = min(remaining)
        spec = (1 << n) - 1
        value = row
        for k in range(n):
            candidate_spec = spec & ~(1 << k)
            inside = True
            for covered in _int_cube_minterms(n, candidate_spec,
                                              value & candidate_spec):
                if not bits >> covered & 1:
                    inside = False
                    break
            if inside:
                spec = candidate_spec
                value &= spec
        cube = _cube_string(n, spec, value)
        cover.append(cube)
        remaining -= set(_int_cube_minterms(n, spec, value))
    return sorted(cover)


def _int_cube_minterms(n: int, spec: int, value: int) -> list[int]:
    free = [k for k in range(n) if not spec >> k & 1]
    rows = []
    for choice in range(1 << len(free)):
        row = value
        for i, k in enumerate(free):
            if choice >> i & 1:
                row |= 1 << k
        rows.append(row)
    return rows


def minimize_cubes(table: TruthTable) -> list[str]:
    """A minimal (prime, irredundant) sum-of-products cover.

    Essential primes are taken first; remaining minterms are covered
    greedily by the prime covering the most of them (ties broken
    lexicographically for determinism).  Constant 0 yields an empty
    cover; constant 1 yields the single all-don't-care cube.
    """
    n = table.n_inputs
    const = table.const_value()
    if const == 0:
        return []
    if const == 1:
        return ["-" * n]
    if n > _QM_LIMIT:
        return _expand_cover(table)

    primes = prime_implicants(table)
    uncovered = set(table.minterms())
    coverage = {cube: set(_cube_minterms(cube)) & uncovered for cube in primes}

    cover: list[str] = []
    for minterm in sorted(uncovered):
        owners = [cube for cube in primes if minterm in coverage[cube]]
        if len(owners) == 1 and owners[0] not in cover:
            cover.append(owners[0])
    covered = set()
    for cube in cover:
        covered |= coverage[cube]
    remaining = uncovered - covered
    while remaining:
        best = max(
            primes,
            key=lambda cube: (len(coverage[cube] & remaining), cube),
        )
        gained = coverage[best] & remaining
        if not gained:
            raise AssertionError("prime cover failed to make progress")
        cover.append(best)
        remaining -= gained
    return sorted(cover)


def literal_count(cubes: list[str]) -> int:
    """Specified-literal count of a cover (the SIS cost function)."""
    return sum(len(cube) - cube.count("-") for cube in cubes)


def simplify_network(network: Network) -> int:
    """Re-express every node minimally; drop unused fanin variables.

    Returns the number of nodes whose function or fanin list changed.
    The function itself is untouched -- only redundant dependencies and
    cover redundancy go away -- so equivalence is structural.
    """
    changed = 0
    for name in network.gates():
        node = network.nodes[name]
        support = node.function.support()
        if len(support) != node.function.n_inputs:
            table = node.function
            fanins = list(node.fanins)
            for index in sorted(range(table.n_inputs), reverse=True):
                if index not in support:
                    table = table.cofactor(index, 0).remove_variable(index)
                    fanins.pop(index)
            node.function = table
            node.fanins = fanins
            network._invalidate()
            changed += 1
    return changed


__all__ = [
    "prime_implicants",
    "minimize_cubes",
    "literal_count",
    "simplify_network",
]
