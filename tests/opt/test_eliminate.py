"""Eliminate (node collapsing) tests."""

from repro.netlist.functions import TruthTable
from repro.netlist.network import Network
from repro.netlist.validate import networks_equivalent
from repro.opt.eliminate import eliminate

_AND2 = TruthTable.and_(2)
_OR2 = TruthTable.or_(2)


def test_collapses_single_fanout_node():
    net = Network()
    for name in ("a", "b", "c"):
        net.add_input(name)
    net.add_node("t", ["a", "b"], _AND2)
    net.add_node("f", ["t", "c"], _OR2)
    net.set_output("f")
    reference = net.copy()
    removed = eliminate(net, max_fanouts=1, max_node_inputs=4)
    assert removed == 1
    assert "t" not in net.nodes
    assert set(net.nodes["f"].fanins) == {"a", "b", "c"}
    assert networks_equivalent(reference, net)


def test_never_collapses_outputs(control_network):
    reference = control_network.copy()
    eliminate(control_network, max_fanouts=5, max_node_inputs=8)
    for out in reference.outputs:
        assert out in control_network.nodes
    assert networks_equivalent(reference, control_network)


def test_respects_fanout_bound():
    net = Network()
    for name in ("a", "b"):
        net.add_input(name)
    net.add_node("t", ["a", "b"], _AND2)
    net.add_node("f", ["t", "a"], _OR2)
    net.add_node("g", ["t", "b"], _OR2)
    net.set_output("f")
    net.set_output("g")
    assert eliminate(net, max_fanouts=1) == 0
    assert "t" in net.nodes


def test_collapse_into_multiple_readers_duplicates_logic():
    net = Network()
    for name in ("a", "b"):
        net.add_input(name)
    net.add_node("t", ["a", "b"], _AND2)
    net.add_node("f", ["t", "a"], _OR2)
    net.add_node("g", ["t", "b"], _OR2)
    net.set_output("f")
    net.set_output("g")
    reference = net.copy()
    removed = eliminate(net, max_fanouts=2)
    assert removed == 1
    assert networks_equivalent(reference, net)


def test_width_guard_prevents_blowup():
    net = Network()
    wide_fanins = [f"i{k}" for k in range(8)]
    for name in wide_fanins + ["x"]:
        net.add_input(name)
    net.add_node("t", wide_fanins, TruthTable.and_(8))
    net.add_node("u", [f"i{k}" for k in range(4)], TruthTable.or_(4))
    net.add_node("f", ["t", "u", "x"], TruthTable.and_(3))
    net.set_output("f")
    # Collapsing t (8 wide) and u into f would exceed the 10-input cap
    # only jointly; eliminate must stay functionally correct regardless.
    reference = net.copy()
    eliminate(net, max_fanouts=1, max_node_inputs=8)
    assert networks_equivalent(reference, net)
    assert all(
        node.function.n_inputs <= 10 for node in net.nodes.values()
        if not node.is_input
    )


def test_shared_fanin_not_double_counted():
    net = Network()
    for name in ("a", "b"):
        net.add_input(name)
    net.add_node("t", ["a", "b"], _AND2)
    net.add_node("f", ["t", "a"], _OR2)  # reads a both ways
    net.set_output("f")
    reference = net.copy()
    eliminate(net, max_fanouts=1)
    assert networks_equivalent(reference, net)
    assert net.nodes["f"].fanins.count("a") == 1
