"""Static timing analysis: arrival / required / slack / critical paths.

``TimingAnalysis`` snapshots the timing of a mapped network under the
*current* voltage levels and converter placement of a
:class:`~repro.timing.delay.DelayCalculator` in one full sweep.  The
dual-Vdd hot loops now run on
:class:`repro.timing.incremental.IncrementalTiming`, which repairs only
the affected cone after each move; this full rebuild remains the ground
truth the incremental engine is equivalence-tested against (see
``tests/timing/test_incremental.py``) and the right tool for one-shot
analyses outside an optimization loop.
"""

from __future__ import annotations

import math

from repro.netlist.network import Network
from repro.timing.delay import DelayCalculator, OUTPUT


def trace_critical_path(calc: DelayCalculator, arrival, load) -> list[str]:
    """One worst input-to-output path (node names, PI first).

    ``arrival`` / ``load`` are name-keyed mappings; shared by the full
    analysis and the incremental engine so the backtracking logic lives
    in exactly one place.
    """
    network = calc.network
    if not network.outputs:
        return []
    end = max(
        network.outputs,
        key=lambda out: arrival[out] + calc.edge_extra_delay(out, OUTPUT),
    )
    path = [end]
    current = end
    while True:
        node = network.nodes[current]
        if node.is_input:
            break
        cell = calc.variant(current)
        node_load = load[current]
        best_fanin = None
        best_at = -math.inf
        for pin, fanin in enumerate(node.fanins):
            at_pin = (
                arrival[fanin]
                + calc.edge_extra_delay(fanin, current)
                + cell.pin_delay(pin, node_load)
            )
            if at_pin > best_at:
                best_at = at_pin
                best_fanin = fanin
        path.append(best_fanin)
        current = best_fanin
    path.reverse()
    return path


class TimingAnalysis:
    """One full arrival/required sweep over a mapped network."""

    def __init__(self, calculator: DelayCalculator, tspec: float):
        self.calculator = calculator
        self.network: Network = calculator.network
        self.tspec = tspec
        self.arrival: dict[str, float] = {}
        self.required: dict[str, float] = {}
        self.load: dict[str, float] = {}
        self._compute()

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def _compute(self) -> None:
        calc = self.calculator
        network = self.network
        order = network.topological()

        for name in order:
            self.load[name] = calc.load(name)

        for name in order:
            node = network.nodes[name]
            if node.is_input:
                self.arrival[name] = 0.0
                continue
            cell = calc.variant(name)
            load = self.load[name]
            worst = 0.0
            for pin, fanin in enumerate(node.fanins):
                at_pin = self.arrival[fanin] + calc.edge_extra_delay(fanin, name)
                worst = max(worst, at_pin + cell.pin_delay(pin, load))
            self.arrival[name] = worst

        for name in reversed(order):
            node = network.nodes[name]
            required = math.inf
            if name in network.outputs:
                required = self.tspec - calc.edge_extra_delay(name, OUTPUT)
            for reader in network.fanouts(name):
                reader_node = network.nodes[reader]
                reader_cell = calc.variant(reader)
                reader_load = self.load[reader]
                extra = calc.edge_extra_delay(name, reader)
                for pin, fanin in enumerate(reader_node.fanins):
                    if fanin != name:
                        continue
                    required = min(
                        required,
                        self.required[reader]
                        - reader_cell.pin_delay(pin, reader_load)
                        - extra,
                    )
            self.required[name] = required

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def arrival_snapshot(self) -> dict[str, float]:
        """Copy of all arrivals (API parity with the incremental engine)."""
        return dict(self.arrival)

    def required_snapshot(self) -> dict[str, float]:
        """Copy of all required times."""
        return dict(self.required)

    def slack(self, name: str) -> float:
        return self.required[name] - self.arrival[name]

    def slacks(self) -> dict[str, float]:
        return {name: self.slack(name) for name in self.network.nodes}

    @property
    def worst_delay(self) -> float:
        """Latest arrival at any primary output, converters included."""
        calc = self.calculator
        return max(
            (
                self.arrival[out] + calc.edge_extra_delay(out, OUTPUT)
                for out in self.network.outputs
            ),
            default=0.0,
        )

    @property
    def worst_slack(self) -> float:
        return min(
            (self.slack(name) for name in self.network.nodes),
            default=math.inf,
        )

    def meets_timing(self, tolerance: float = 1e-9) -> bool:
        return self.worst_delay <= self.tspec + tolerance

    def critical_path(self) -> list[str]:
        """One worst input-to-output path (node names, PI first)."""
        return trace_critical_path(self.calculator, self.arrival, self.load)

    def nodes_with_slack(self, threshold: float) -> list[str]:
        """Internal nodes whose slack strictly exceeds ``threshold``."""
        return [
            name
            for name in self.network.gates()
            if self.slack(name) > threshold
        ]


__all__ = ["TimingAnalysis", "trace_critical_path"]
