"""High-level API: run CVS / Dscale / Gscale on a mapped network.

This is the library's front door for users who already have a mapped
netlist and a timing budget::

    from repro import build_compass_library, scale_voltage

    state, report = scale_voltage(mapped, library, tspec, method="gscale")

For the full paper flow (optimize, map, derive the 20%-relaxed
constraint, compare all three algorithms) see
:mod:`repro.flow.experiment`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.cvs import run_cvs
from repro.core.dscale import run_dscale
from repro.core.gscale import (
    DEFAULT_AREA_BUDGET,
    DEFAULT_MAX_ITER,
    run_gscale,
)
from repro.core.state import ScalingOptions, ScalingState
from repro.library.cells import Library
from repro.netlist.network import Network
from repro.power.activity import Activity

METHODS = ("cvs", "dscale", "gscale")


@dataclass(frozen=True)
class ScalingReport:
    """Summary of one scaling run (a row of the paper's tables)."""

    method: str
    power_before_uw: float
    power_after_uw: float
    improvement_pct: float
    n_gates: int
    n_low: int
    low_ratio: float
    n_converters: int
    n_resized: int
    area_increase_ratio: float  # sizing-only (the paper's AreaInc column)
    worst_delay_ns: float
    tspec_ns: float
    runtime_s: float


def scale_voltage(network: Network, library: Library, tspec: float,
                  method: str = "gscale",
                  activity: Activity | None = None,
                  options: ScalingOptions | None = None,
                  max_iter: int = DEFAULT_MAX_ITER,
                  area_budget: float = DEFAULT_AREA_BUDGET,
                  ) -> tuple[ScalingState, ScalingReport]:
    """Run one algorithm on a mapped network; returns (state, report).

    The network is modified in place only by Gscale's gate resizing;
    voltage levels and converters stay in the returned state (use
    :func:`repro.core.restore.materialize_converters` to export).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")

    state = ScalingState(network, library, tspec, activity=activity,
                         options=options)
    power_before = state.power()
    started = time.perf_counter()
    if method == "cvs":
        run_cvs(state)
        state.validate()
    elif method == "dscale":
        run_dscale(state)
    else:
        run_gscale(state, max_iter=max_iter, area_budget=area_budget)
    elapsed = time.perf_counter() - started

    power_after = state.power()
    report = ScalingReport(
        method=method,
        power_before_uw=power_before.total,
        power_after_uw=power_after.total,
        improvement_pct=power_after.improvement_over(power_before),
        n_gates=state.n_gates,
        n_low=state.n_low,
        low_ratio=state.low_ratio,
        n_converters=len(state.lc_edges),
        n_resized=state.n_resized,
        area_increase_ratio=state.sizing_area_increase_ratio,
        worst_delay_ns=state.timing().worst_delay,
        tspec_ns=tspec,
        runtime_s=elapsed,
    )
    return state, report


__all__ = ["METHODS", "ScalingReport", "scale_voltage"]
