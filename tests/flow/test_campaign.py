"""Campaign runner tests: sharding, resume, fault isolation, fidelity.

The heavyweight properties the CI quality gate leans on:

* serial and multi-process campaigns produce row-identical stores
  (modulo the volatile timing fields);
* an interrupted campaign resumed with ``--resume`` completes to a
  store equal to an uninterrupted run's;
* a raising job becomes a ``failed`` row without aborting the sweep;
* tables regenerated from a store are byte-identical to tables
  formatted from the same in-memory results.
"""

import dataclasses
import json

import pytest

import repro.flow.campaign as campaign_mod
from repro.__main__ import main
from repro.core.pipeline import METHODS
from repro.flow.campaign import (
    CampaignJob,
    build_jobs,
    group_jobs,
    rows_to_results,
    run_campaign,
    run_job_group,
    sweep_points,
    sweep_rail_sets,
)
from repro.flow.experiment import run_suite
from repro.flow.store import ResultStore, rows_equal
from repro.flow.tables import format_table1, format_table2

SMALL = ["z4ml", "x2"]


@pytest.fixture(autouse=True)
def _fresh_worker_caches():
    campaign_mod.clear_worker_caches()
    yield
    campaign_mod.clear_worker_caches()


# -- job construction -------------------------------------------------

def test_build_jobs_cross_product():
    jobs = build_jobs(SMALL, vdd_lows=[4.3, 4.0],
                      slack_factors=[1.1, 1.2])
    assert len(jobs) == 2 * 3 * 2 * 2
    assert len({j.job_id for j in jobs}) == len(jobs)
    # Deterministic order: all methods of one group are adjacent, so a
    # group shares one prepared circuit.
    assert [j.method for j in jobs[:3]] == list(METHODS)
    assert len({j.group_key for j in jobs[:3]}) == 1


def test_build_jobs_rejects_unknown_method():
    with pytest.raises(ValueError, match="method"):
        build_jobs(SMALL, methods=("warp",))


def test_job_id_is_deterministic():
    job = CampaignJob("C432", "gscale", 4.3, 1.2)
    assert job.job_id == "C432:gscale:v4.3:s1.2"
    assert CampaignJob("C432", "gscale", 4.3, 1.2).job_id == job.job_id


def test_group_jobs_preserves_order():
    jobs = build_jobs(SMALL)
    groups = group_jobs(jobs)
    assert [key[0] for key, _ in groups] == SMALL
    assert all(len(group) == 3 for _, group in groups)


# -- execution: serial, parallel, resume ------------------------------

def test_serial_campaign_matches_run_suite(tmp_path, library):
    store = ResultStore(tmp_path / "serial.jsonl")
    summary = run_campaign(build_jobs(SMALL), store)
    assert (summary.ok, summary.failed, summary.skipped) == (6, 0, 0)

    results = {r.name: r for r in rows_to_results(store.load())}
    expected = {r.name: r for r in run_suite(SMALL, library)}
    assert set(results) == set(expected)
    for name, got in results.items():
        want = expected[name]
        assert (got.gates, got.min_delay_ns, got.tspec_ns) == \
            (want.gates, want.min_delay_ns, want.tspec_ns)
        assert got.org_power_uw == want.org_power_uw
        for method in METHODS:
            a = dataclasses.replace(got.reports[method], runtime_s=0.0)
            b = dataclasses.replace(want.reports[method], runtime_s=0.0)
            assert a == b, (name, method)


def test_parallel_store_row_identical_to_serial(tmp_path):
    serial = ResultStore(tmp_path / "serial.jsonl")
    run_campaign(build_jobs(SMALL), serial)
    parallel = ResultStore(tmp_path / "parallel.jsonl")
    summary = run_campaign(build_jobs(SMALL), parallel, n_jobs=2)
    assert summary.ok == 6
    assert rows_equal(serial.load(), parallel.load())


def test_resume_skips_completed_job_ids(tmp_path):
    jobs = build_jobs(SMALL)
    reference = ResultStore(tmp_path / "reference.jsonl")
    run_campaign(jobs, reference)
    ref_rows = reference.load()

    # Simulate a campaign killed mid-write: the first four rows landed
    # whole, the fifth was torn by the crash.
    partial_path = tmp_path / "partial.jsonl"
    with open(partial_path, "w", encoding="utf-8") as handle:
        for row in ref_rows[:4]:
            handle.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        handle.write(json.dumps(ref_rows[4])[:25])

    calls = []
    original = campaign_mod.scale_voltage

    def counting(network, library, tspec, method="gscale", **kwargs):
        calls.append(method)
        return original(network, library, tspec, method=method, **kwargs)

    campaign_mod.scale_voltage = counting
    try:
        store = ResultStore(partial_path)
        summary = run_campaign(jobs, store, resume=True)
    finally:
        campaign_mod.scale_voltage = original

    assert summary.skipped == 4
    assert summary.ok == 2
    assert len(calls) == 2  # only the missing jobs re-ran
    assert rows_equal(store.load(), ref_rows)


def test_without_resume_the_store_is_truncated(tmp_path):
    store = ResultStore(tmp_path / "s.jsonl")
    run_campaign(build_jobs(["z4ml"]), store)
    first = store.load()
    run_campaign(build_jobs(["z4ml"]), store)
    assert len(store.load()) == len(first)


def test_failed_rows_are_retried_on_resume(tmp_path):
    store = ResultStore(tmp_path / "s.jsonl")
    with store:
        store.append({
            "schema": 1, "job_id": "z4ml:cvs:v4.3:s1.2",
            "status": "failed", "circuit": "z4ml", "method": "cvs",
            "vdd_low": 4.3, "slack_factor": 1.2,
            "error": "RuntimeError: transient", "runtime_s": 0.0,
        })
    summary = run_campaign(build_jobs(["z4ml"]), store, resume=True)
    assert summary.skipped == 0
    assert summary.ok == 3
    # Aggregation takes the fresh ok-row over the stale failed row.
    results = rows_to_results(store.load())
    assert set(results[0].reports) == set(METHODS)


# -- fault isolation --------------------------------------------------

def test_raising_job_yields_failed_row_not_abort(tmp_path):
    original = campaign_mod.scale_voltage

    def sabotaged(network, library, tspec, method="gscale", **kwargs):
        if method == "dscale":
            raise RuntimeError("injected dscale failure")
        return original(network, library, tspec, method=method, **kwargs)

    campaign_mod.scale_voltage = sabotaged
    try:
        store = ResultStore(tmp_path / "s.jsonl")
        summary = run_campaign(build_jobs(SMALL), store)
    finally:
        campaign_mod.scale_voltage = original

    assert summary.ok == 4
    assert summary.failed == 2
    failed = [r for r in store.load() if r["status"] == "failed"]
    assert {r["method"] for r in failed} == {"dscale"}
    assert all("injected dscale failure" in r["error"] for r in failed)
    assert all("Traceback" in r["traceback"] for r in failed)
    # The surviving methods still aggregate into results.
    results = rows_to_results(store.load())
    assert all(set(r.reports) == {"cvs", "gscale"} for r in results)


def test_unknown_circuit_fails_whole_group_gracefully(tmp_path):
    jobs = [CampaignJob("no_such_circuit", m) for m in METHODS]
    rows = run_job_group(jobs)
    assert len(rows) == 3
    assert all(r["status"] == "failed" for r in rows)
    assert all("no_such_circuit" in r["error"] for r in rows)


def test_parallel_worker_failure_is_isolated(tmp_path):
    jobs = build_jobs(["z4ml"]) + [CampaignJob("no_such_circuit", "cvs")]
    store = ResultStore(tmp_path / "s.jsonl")
    summary = run_campaign(jobs, store, n_jobs=2)
    assert summary.ok == 3
    assert summary.failed == 1


# -- aggregation and sweeps -------------------------------------------

def test_tables_from_store_byte_identical(tmp_path):
    store = ResultStore(tmp_path / "s.jsonl")
    run_campaign(build_jobs(SMALL), store)
    results = rows_to_results(store.load())
    # Re-load through a second store object (fresh JSON parse): the
    # formatted tables must not change by a single byte.
    reloaded = rows_to_results(ResultStore(store.path).load())
    assert format_table1(reloaded) == format_table1(results)
    assert format_table2(reloaded) == format_table2(results)


def test_tables_cli_from_store_matches_direct(tmp_path, capsys):
    store_path = str(tmp_path / "s.jsonl")
    assert main(["tables", "--circuits", ",".join(SMALL),
                 "--store", store_path]) == 0
    direct = capsys.readouterr().out
    assert main(["tables", "--from-store", store_path]) == 0
    from_store = capsys.readouterr().out
    # Strip the per-job progress prologue; the tables themselves (from
    # "Table 1:" onward) must match byte for byte.
    def table_of(text):
        return text[text.index("Table 1:"):]

    assert table_of(from_store) == table_of(direct)


def test_duplicate_job_ids_last_row_wins(tmp_path):
    store = ResultStore(tmp_path / "s.jsonl")
    run_campaign(build_jobs(["z4ml"]), store)
    rows = store.load()
    stale = json.loads(json.dumps(rows[0]))
    stale["gates"] = 9999
    stale["report"] = dict(stale["report"], improvement_pct=-1.0)
    # The stale duplicate precedes the fresh rows in file order.
    (result,) = rows_to_results([stale] + rows)
    assert result.gates == rows[0]["gates"]
    method = rows[0]["method"]
    assert result.reports[method].improvement_pct != -1.0


def test_sweep_jobs_and_point_selection(tmp_path):
    jobs = build_jobs(["z4ml"], vdd_lows=[4.3, 4.0],
                      slack_factors=[1.2])
    store = ResultStore(tmp_path / "sweep.jsonl")
    summary = run_campaign(jobs, store)
    assert summary.ok == 6
    rows = store.load()
    assert sweep_points(rows) == [(4.0, 1.2), (4.3, 1.2)]
    with pytest.raises(ValueError, match="sweep"):
        rows_to_results(rows)
    low = rows_to_results(rows, vdd_low=4.0)
    high = rows_to_results(rows, vdd_low=4.3)
    assert len(low) == len(high) == 1
    # A lower rail saves more per demoted gate on this tiny circuit.
    assert low[0].reports["gscale"].improvement_pct != \
        high[0].reports["gscale"].improvement_pct


# -- per-job wall-clock timeouts --------------------------------------

def test_slow_job_times_out_while_group_completes(tmp_path):
    """A deliberately slow job becomes a timeout row; its group's other
    jobs still finish ok (the pool never hangs)."""
    import time as time_mod

    original = campaign_mod.scale_voltage

    def stalling(network, library, tspec, method="gscale", **kwargs):
        if method == "dscale":
            time_mod.sleep(30.0)  # far beyond the budget; SIGALRM cuts in
        return original(network, library, tspec, method=method, **kwargs)

    campaign_mod.scale_voltage = stalling
    try:
        store = ResultStore(tmp_path / "s.jsonl")
        started = time_mod.perf_counter()
        summary = run_campaign(build_jobs(["z4ml"]), store, timeout_s=1.0)
        elapsed = time_mod.perf_counter() - started
    finally:
        campaign_mod.scale_voltage = original

    assert elapsed < 15.0  # nowhere near the 30 s stall
    assert (summary.ok, summary.failed) == (2, 1)
    rows = {r["method"]: r for r in store.load()}
    assert rows["cvs"]["status"] == "ok"
    assert rows["gscale"]["status"] == "ok"
    failed = rows["dscale"]
    assert failed["status"] == "failed"
    assert failed["timeout"] is True
    assert "JobTimeout" in failed["error"]
    # The overrun is retried on resume, exactly like any failed row.
    assert store.completed_ids() == {
        rows["cvs"]["job_id"], rows["gscale"]["job_id"]
    }


def test_generous_timeout_changes_nothing(tmp_path):
    with_budget = ResultStore(tmp_path / "budget.jsonl")
    run_campaign(build_jobs(["z4ml"]), with_budget, timeout_s=120.0)
    without = ResultStore(tmp_path / "plain.jsonl")
    run_campaign(build_jobs(["z4ml"]), without)
    assert rows_equal(with_budget.load(), without.load())


# -- the MSV rails grid dimension -------------------------------------

RAILS3 = (5.0, 4.3, 3.6)


def test_rails_jobs_have_rail_aware_ids():
    jobs = build_jobs(["z4ml"], rails_sets=[RAILS3])
    assert [j.job_id for j in jobs] == [
        f"z4ml:{m}:r5-4.3-3.6:s1.2" for m in METHODS
    ]
    assert all(j.vdd_low == 4.3 for j in jobs)  # mirrors rails[1]
    assert len({j.group_key for j in jobs}) == 1


def test_build_jobs_rejects_short_rail_set():
    with pytest.raises(ValueError, match="two supplies"):
        build_jobs(["z4ml"], rails_sets=[(5.0,)])


def test_three_rail_campaign_end_to_end_with_resume(tmp_path):
    """The acceptance path: a 3-rail subset campaign runs through store
    and tables, and an interrupted run resumes to the same rows."""
    jobs = build_jobs(SMALL, rails_sets=[RAILS3])
    reference = ResultStore(tmp_path / "ref.jsonl")
    summary = run_campaign(jobs, reference)
    assert (summary.ok, summary.failed) == (6, 0)
    ref_rows = reference.load()
    assert all(r["rails"] == list(RAILS3) for r in ref_rows)
    assert sweep_rail_sets(ref_rows) == [RAILS3]

    # Tables aggregate the MSV point like any other grid point.
    results = rows_to_results(ref_rows, rails=RAILS3)
    assert {r.name for r in results} == set(SMALL)
    table = format_table1(results)
    assert "z4ml" in table and "x2" in table

    # Resume: first four rows landed, the fifth was torn mid-write.
    partial_path = tmp_path / "partial.jsonl"
    with open(partial_path, "w", encoding="utf-8") as handle:
        for row in ref_rows[:4]:
            handle.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        handle.write(json.dumps(ref_rows[4])[:25])
    store = ResultStore(partial_path)
    resumed = run_campaign(jobs, store, resume=True)
    assert resumed.skipped == 4
    assert resumed.ok == 2
    assert rows_equal(store.load(), ref_rows)


def test_mixed_rails_and_classic_store_needs_explicit_point(tmp_path):
    store = ResultStore(tmp_path / "mixed.jsonl")
    run_campaign(build_jobs(["z4ml"]), store)
    run_campaign(build_jobs(["z4ml"], rails_sets=[RAILS3]), store,
                 resume=True)
    rows = store.load()
    assert sweep_rail_sets(rows) == [(), RAILS3]
    with pytest.raises(ValueError, match="rails"):
        rows_to_results(rows)
    classic = rows_to_results(rows, rails=())
    msv = rows_to_results(rows, rails=RAILS3)
    assert len(classic) == len(msv) == 1
    # Deeper rails open savings the dual pair cannot reach.
    assert msv[0].reports["gscale"].improvement_pct >= \
        classic[0].reports["gscale"].improvement_pct


def test_schema1_rows_without_rails_field_still_aggregate():
    """Backward readability: a v1-era row (no rails/timeout keys) loads
    as a classic dual-Vdd row."""
    legacy = {
        "schema": 1, "job_id": "z4ml:cvs:v4.3:s1.2", "status": "ok",
        "circuit": "z4ml", "method": "cvs", "vdd_low": 4.3,
        "slack_factor": 1.2, "gates": 20, "org_power_uw": 10.0,
        "min_delay_ns": 1.0, "tspec_ns": 1.2,
        "report": {
            "method": "cvs", "power_before_uw": 10.0,
            "power_after_uw": 9.0, "improvement_pct": 10.0,
            "n_gates": 20, "n_low": 5, "low_ratio": 0.25,
            "n_converters": 0, "n_resized": 0,
            "area_increase_ratio": 0.0, "worst_delay_ns": 1.1,
            "tspec_ns": 1.2, "runtime_s": 0.1,
        },
    }
    (result,) = rows_to_results([legacy])
    assert result.reports["cvs"].improvement_pct == 10.0
    assert campaign_mod.row_rails(legacy) == ()


def test_campaign_cli_rails_and_store_compact(tmp_path, capsys):
    out = str(tmp_path / "msv.jsonl")
    assert main(["campaign", "--circuits", "z4ml",
                 "--rails", "5.0,4.3,3.6", "--out", out]) == 0
    text = capsys.readouterr().out
    assert "1 rail set(s)" in text and "3 ok" in text
    # Rerun without resume appends nothing new after truncation; then a
    # duplicate-producing resume cycle compacts back down.
    assert main(["campaign", "--circuits", "z4ml",
                 "--rails", "5.0,4.3,3.6", "--out", out]) == 0
    capsys.readouterr()
    assert main(["store", "compact", out]) == 0
    assert "kept 3/3" in capsys.readouterr().out
    assert main(["tables", "--from-store", out,
                 "--rails", "5.0,4.3,3.6"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_tables_cli_rails_dual_selects_classic_rows(tmp_path, capsys):
    """A mixed store's classic dual-Vdd point is reachable from the
    CLI as --rails dual (the empty rail set has no comma spelling)."""
    out = str(tmp_path / "mixed.jsonl")
    assert main(["campaign", "--circuits", "z4ml", "--out", out]) == 0
    assert main(["campaign", "--circuits", "z4ml",
                 "--rails", "5.0,4.3,3.6", "--out", out, "--resume"]) == 0
    capsys.readouterr()
    assert main(["tables", "--from-store", out, "--rails", "dual"]) == 0
    dual_text = capsys.readouterr().out
    assert "Table 1" in dual_text
    assert main(["tables", "--from-store", out,
                 "--rails", "5.0,4.3,3.6"]) == 0
    msv_text = capsys.readouterr().out
    assert "Table 1" in msv_text
    assert dual_text != msv_text  # genuinely different grid points


# -- CLI --------------------------------------------------------------

def test_campaign_cli_runs_and_resumes(tmp_path, capsys):
    out = str(tmp_path / "cli.jsonl")
    assert main(["campaign", "--circuits", "z4ml", "--out", out]) == 0
    text = capsys.readouterr().out
    assert "3 jobs" in text and "3 ok" in text
    assert main(["campaign", "--circuits", "z4ml", "--out", out,
                 "--resume"]) == 0
    text = capsys.readouterr().out
    assert "3 skipped" in text
    assert len(ResultStore(out).load()) == 3


def test_campaign_cli_rejects_unknown_circuit(tmp_path):
    with pytest.raises(SystemExit):
        main(["campaign", "--circuits", "nope",
              "--out", str(tmp_path / "x.jsonl")])
