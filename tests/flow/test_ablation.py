"""Ablation sweep tests (small circuits; full sweeps live in benchmarks)."""

import pytest

from repro.flow.ablation import (
    sweep_area_budget,
    sweep_converter_kind,
    sweep_max_iter,
    sweep_voltage_pairs,
)

CIRCUIT = ["pm1"]


def test_max_iter_sweep_monotone_opportunity():
    points = sweep_max_iter(CIRCUIT, values=(0, 10))
    by_value = {p.value: p for p in points}
    assert by_value[10].improvement_pct >= by_value[0].improvement_pct - 1e-9
    for point in points:
        assert point.parameter == "max_iter"
        assert 0 <= point.low_ratio <= 1


def test_voltage_sweep_respects_quadratic_ceiling():
    points = sweep_voltage_pairs(CIRCUIT, lows=(4.6, 4.3))
    for point in points:
        ceiling = 100.0 * (1 - (point.value / 5.0) ** 2)
        assert point.improvement_pct <= ceiling + 1e-6


def test_area_budget_sweep():
    points = sweep_area_budget(CIRCUIT, budgets=(0.0, 0.10))
    by_budget = {p.value: p for p in points}
    assert by_budget[0.0].area_increase == pytest.approx(0.0)
    assert (by_budget[0.10].improvement_pct
            >= by_budget[0.0].improvement_pct - 1e-9)


def test_converter_kind_sweep_runs_both_designs():
    points = sweep_converter_kind(CIRCUIT)
    kinds = {p.value for p in points}
    assert kinds == {"pg", "cm"}
    for point in points:
        assert point.improvement_pct >= -1e-9


def test_voltage_sweep_other_method_and_multiple_circuits():
    points = sweep_voltage_pairs(["z4ml", "pm1"], lows=(4.3,),
                                 method="dscale")
    assert len(points) == 2
    assert {p.circuit for p in points} == {"z4ml", "pm1"}
    for point in points:
        assert point.parameter == "vdd_low"
        assert point.value == 4.3
        assert point.improvement_pct >= -1e-9
        # Dscale never resizes, so the sizing area increase is zero.
        assert point.area_increase == pytest.approx(0.0)


def test_sweeps_share_one_preparation_per_circuit():
    """The knob grid reuses one prepared circuit: every max_iter point
    of a circuit reports the same physical baseline behavior (improving
    monotonically in opportunity, never jumping baselines)."""
    points = sweep_max_iter(CIRCUIT, values=(0, 1, 2))
    assert [p.value for p in points] == [0, 1, 2]
    improvements = [p.improvement_pct for p in points]
    assert improvements == sorted(improvements)


def test_area_budget_zero_forbids_resizing():
    (point,) = sweep_area_budget(CIRCUIT, budgets=(0.0,))
    assert point.area_increase == pytest.approx(0.0)


def test_converter_kind_changes_the_cost_model():
    pg, cm = sweep_converter_kind(CIRCUIT)
    assert (pg.value, cm.value) == ("pg", "cm")
    # Both designs yield a legal (non-negative) saving; the sweep's
    # point is that the numbers may differ, not which one wins.
    assert pg.improvement_pct >= -1e-9
    assert cm.improvement_pct >= -1e-9
