"""Unit and property tests for truth-table boolean functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.functions import (
    MAX_INPUTS,
    TruthTable,
    all_functions,
    cube_distance,
    parse_minterm,
    random_table,
)

tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
        lambda bits: TruthTable(n, bits)
    )
)


class TestConstruction:
    def test_const_zero_and_one(self):
        for n in range(4):
            assert TruthTable.const(n, False).count_ones() == 0
            assert TruthTable.const(n, True).count_ones() == 1 << n

    def test_var_projects_each_input(self):
        table = TruthTable.var(3, 1)
        assert table.evaluate([0, 1, 0]) == 1
        assert table.evaluate([1, 0, 1]) == 0

    def test_var_index_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 2)

    def test_width_cap(self):
        with pytest.raises(ValueError):
            TruthTable(MAX_INPUTS + 1, 0)

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable(1, 4)

    def test_from_rows_round_trip(self):
        rows = [0, 1, 1, 0]
        table = TruthTable.from_rows(rows)
        assert [table.bits >> k & 1 for k in range(4)] == rows

    def test_from_rows_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_rows([0, 1, 0])

    def test_from_function_matches_manual(self):
        table = TruthTable.from_function(2, lambda a, b: a and not b)
        assert table.evaluate([1, 0]) == 1
        assert table.evaluate([1, 1]) == 0
        assert table.evaluate([0, 0]) == 0

    def test_from_cubes_or_of_cubes(self):
        table = TruthTable.from_cubes(3, ["1-0", "01-"])
        assert table.evaluate([1, 0, 0]) == 1
        assert table.evaluate([0, 1, 1]) == 1
        assert table.evaluate([0, 0, 0]) == 0

    def test_from_cubes_empty_is_const0(self):
        assert TruthTable.from_cubes(2, []).const_value() == 0

    def test_from_cubes_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_cubes(2, ["101"])

    def test_from_cubes_bad_character(self):
        with pytest.raises(ValueError):
            TruthTable.from_cubes(2, ["1x"])

    def test_immutable(self):
        table = TruthTable.var(1, 0)
        with pytest.raises(AttributeError):
            table.bits = 0


class TestGateFamilies:
    def test_and_or_nand_nor(self):
        for n in (1, 2, 3):
            all_ones = [1] * n
            all_zeros = [0] * n
            assert TruthTable.and_(n).evaluate(all_ones) == 1
            assert TruthTable.and_(n).evaluate(all_zeros) == 0
            assert TruthTable.or_(n).evaluate(all_zeros) == 0
            assert TruthTable.nand(n).evaluate(all_ones) == 0
            assert TruthTable.nor(n).evaluate(all_zeros) == 1

    def test_xor_parity(self):
        table = TruthTable.xor(3)
        for row in range(8):
            bits = [row >> k & 1 for k in range(3)]
            assert table.evaluate(bits) == sum(bits) % 2

    def test_xnor_is_inverted_xor(self):
        assert TruthTable.xnor(2) == ~TruthTable.xor(2)

    def test_mux_semantics(self):
        mux = TruthTable.mux()
        # (sel, a, b): sel ? b : a
        assert mux.evaluate([0, 1, 0]) == 1
        assert mux.evaluate([1, 1, 0]) == 0

    def test_majority(self):
        maj = TruthTable.majority()
        assert maj.evaluate([1, 1, 0]) == 1
        assert maj.evaluate([1, 0, 0]) == 0

    def test_identity_and_inverter(self):
        assert TruthTable.identity().evaluate([1]) == 1
        assert TruthTable.inverter().evaluate([1]) == 0


class TestAlgebra:
    def test_de_morgan(self):
        a = TruthTable.var(2, 0)
        b = TruthTable.var(2, 1)
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    def test_xor_via_and_or(self):
        a = TruthTable.var(2, 0)
        b = TruthTable.var(2, 1)
        assert (a & ~b) | (~a & b) == TruthTable.xor(2)

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 0) & TruthTable.var(3, 0)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            TruthTable.var(2, 0) & 3

    def test_hash_consistency(self):
        assert hash(TruthTable.xor(2)) == hash(~TruthTable.xnor(2))

    @given(tables)
    @settings(max_examples=60, deadline=None)
    def test_double_negation(self, table):
        assert ~~table == table

    @given(tables, st.data())
    @settings(max_examples=60, deadline=None)
    def test_and_is_pointwise(self, table, data):
        other = data.draw(
            st.integers(0, (1 << (1 << table.n_inputs)) - 1).map(
                lambda bits: TruthTable(table.n_inputs, bits)
            )
        )
        combined = table & other
        for row in range(1 << table.n_inputs):
            values = [row >> k & 1 for k in range(table.n_inputs)]
            assert combined.evaluate(values) == (
                table.evaluate(values) & other.evaluate(values)
            )


class TestStructure:
    def test_support_of_degenerate_function(self):
        # f(a, b) = a ignores b.
        table = TruthTable.from_function(2, lambda a, b: a)
        assert table.support() == (0,)
        assert not table.depends_on(1)

    def test_cofactor_removes_dependence(self):
        table = TruthTable.xor(3)
        positive = table.cofactor(1, 1)
        assert not positive.depends_on(1)
        assert positive.evaluate([1, 0, 0]) == 0  # 1 xor 1 xor 0

    def test_cofactor_index_range(self):
        with pytest.raises(ValueError):
            TruthTable.xor(2).cofactor(2, 0)

    def test_shannon_expansion(self):
        table = TruthTable.majority()
        var0 = TruthTable.var(3, 0)
        rebuilt = (var0 & table.cofactor(0, 1)) | (~var0 & table.cofactor(0, 0))
        assert rebuilt == table

    def test_remove_variable(self):
        table = TruthTable.from_function(3, lambda a, b, c: a ^ c)
        smaller = table.remove_variable(1)
        assert smaller.n_inputs == 2
        assert smaller == TruthTable.xor(2)

    def test_remove_variable_rejects_support(self):
        with pytest.raises(ValueError):
            TruthTable.xor(2).remove_variable(0)

    def test_permute_swaps_roles(self):
        mux = TruthTable.mux()  # (sel, a, b)
        swapped = mux.permute([0, 2, 1])  # (sel, b, a)
        assert swapped.evaluate([0, 0, 1]) == 1
        assert swapped.evaluate([1, 0, 1]) == 0

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            TruthTable.xor(2).permute([0, 0])

    def test_compose_builds_aoi(self):
        nand = TruthTable.nand(2)
        # nand(nand(a,b), nand(a,b)) == and(a, b) inverted twice = a & b? no:
        # nand(x, x) == ~x, so this is and(a, b).
        inner = nand
        composed = nand.compose([inner, inner])
        assert composed == TruthTable.and_(2)

    def test_compose_arity_checks(self):
        with pytest.raises(ValueError):
            TruthTable.xor(2).compose([TruthTable.var(1, 0)])

    def test_minterms_and_count(self):
        table = TruthTable.and_(2)
        assert table.minterms() == [3]
        assert table.count_ones() == 1

    def test_to_cubes_covers_exactly(self):
        table = TruthTable.xor(2)
        rebuilt = TruthTable.from_cubes(2, table.to_cubes())
        assert rebuilt == table


class TestWordEvaluation:
    @given(tables, st.integers(min_value=1, max_value=64), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_word_matches_scalar(self, table, width, rng):
        width_mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(table.n_inputs)]
        packed = table.evaluate_word(words, width_mask)
        for lane in range(width):
            values = [words[k] >> lane & 1 for k in range(table.n_inputs)]
            assert packed >> lane & 1 == table.evaluate(values)

    def test_zero_input_word(self):
        assert TruthTable.const(0, True).evaluate_word([], 0b111) == 0b111
        assert TruthTable.const(0, False).evaluate_word([], 0b111) == 0


class TestHelpers:
    def test_all_functions_count(self):
        assert sum(1 for _ in all_functions(1)) == 4

    def test_random_table_deterministic(self):
        import random

        a = random_table(3, random.Random(7))
        b = random_table(3, random.Random(7))
        assert a == b

    def test_cube_distance(self):
        assert cube_distance("1-0", "110") == 0
        assert cube_distance("10", "01") == 2
        with pytest.raises(ValueError):
            cube_distance("1", "10")

    def test_parse_minterm(self):
        assert parse_minterm("101") == 0b101
        with pytest.raises(ValueError):
            parse_minterm("1-1")

    def test_evaluate_wrong_arity(self):
        with pytest.raises(ValueError):
            TruthTable.xor(2).evaluate([1])

    def test_repr_is_stable(self):
        assert "TruthTable(2" in repr(TruthTable.xor(2))
