"""Append-only JSONL result store for campaign runs.

Every finished (circuit, method, vdd_low, slack_factor) job becomes one
JSON object on its own line, keyed by a deterministic ``job_id``.  The
format is deliberately dumb so that a campaign interrupted by a crash,
an OOM kill, or Ctrl-C loses at most the line being written: on resume
the store is re-read, completed job ids are skipped, and a torn final
line is ignored.

Row schema (``SCHEMA_VERSION`` guards future migrations)::

    {
      "schema": 4,
      "job_id": "C432:gscale:v4.3:s1.2",       # or ...:r5-4.3-3.6:s1.2
      "status": "ok" | "failed" | "poisoned",
      "circuit": "C432", "method": "gscale",
      "vdd_low": 4.3, "slack_factor": 1.2,
      "rails": [],                 # MSV rail set; [] = classic dual-Vdd
      # status == "ok":
      "gates": 164, "org_power_uw": ..., "min_delay_ns": ...,
      "tspec_ns": ..., "report": {<ScalingReport fields>},
      # status == "failed" / "poisoned":
      "error": "ValueError: ...", "timeout": false, "traceback": "...",
      # volatile (excluded from row-equality comparisons):
      "attempt": 1, "runtime_s": 0.41,
      "finished_at": "2026-07-28T12:00:00+00:00", "worker_pid": 1234,
      # line integrity (schema 4+; stripped from loaded rows):
      "crc": "9f3a01c2",
    }

Schema history: version 1 had no ``rails`` / ``timeout`` fields;
version 2 had no ``cost_model``; version 3 had no ``attempt`` /
``crc`` / ``"poisoned"`` status.  Every reader here treats an absent
field as the classic shape, so old stores keep loading, resuming, and
aggregating unchanged.

Integrity: every schema-4 line carries a CRC-32 of its canonical
serialization, so silent corruption (bit rot, a partial overwrite, a
concatenated fragment) is *detected*, not just tolerated.  Reading
skips-and-counts damaged lines (:class:`StoreIntegrity` on the store's
``integrity`` attribute after a full read): an unparseable final line
is a torn tail (a crash mid-append -- the job simply re-runs on
resume), an unparseable interior line or a CRC mismatch is a corrupt
row (ditto, but reported so operators see the disk misbehaving).
``compact`` rewrites atomically (temp + fsync + rename) and re-stamps
every surviving row's CRC.

Floats round-trip exactly through ``json`` (``repr``-based), so tables
regenerated from a store are bit-identical to tables formatted from the
in-memory results the rows were serialized from.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.api.artifact import SCHEMA_VERSION

VOLATILE_FIELDS = ("runtime_s", "finished_at", "worker_pid", "attempt",
                   "crc")
"""Row fields that legitimately differ between runs of the same job
(``attempt`` depends on how often a chaos run killed the worker;
``crc`` covers the volatile fields, so it is volatile too)."""

VOLATILE_REPORT_FIELDS = ("runtime_s",)
"""ScalingReport fields that differ between runs (wall-clock)."""


def normalize_row(row: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``row`` with every volatile field removed.

    Two stores describe the same campaign outcome iff their normalized
    row sets are equal -- this is the "identical modulo timestamps"
    comparison the resume and parallel-equivalence tests use.
    """
    out = {k: v for k, v in row.items() if k not in VOLATILE_FIELDS}
    if isinstance(out.get("report"), dict):
        out["report"] = {
            k: v
            for k, v in out["report"].items()
            if k not in VOLATILE_REPORT_FIELDS
        }
    return out


def _canonical(row: dict[str, Any]) -> str:
    """The one serialization rows are written and checksummed in."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def _crc_of(row: dict[str, Any]) -> str:
    """CRC-32 (hex) of a row's canonical serialization, ``crc``
    field excluded."""
    payload = {k: v for k, v in row.items() if k != "crc"}
    return format(zlib.crc32(_canonical(payload).encode("utf-8")), "08x")


def _store_line(row: dict[str, Any]) -> str:
    """One on-disk line: the row plus its freshly computed CRC."""
    payload = {k: v for k, v in row.items() if k != "crc"}
    payload["crc"] = _crc_of(payload)
    return _canonical(payload)


@dataclass
class StoreIntegrity:
    """What a full read of one store found, line by line.

    ``rows`` counts the clean rows yielded; ``crc_checked`` the subset
    that carried (and passed) a schema-4 checksum; ``corrupt`` the
    skipped interior lines (unparseable JSON or CRC mismatch);
    ``torn`` the skipped unparseable *final* line (a crash mid-append,
    expected and benign).
    """

    rows: int = 0
    crc_checked: int = 0
    corrupt: int = 0
    torn: int = 0

    @property
    def damaged(self) -> int:
        return self.corrupt + self.torn

    def describe(self) -> str:
        return (
            f"{self.rows} rows ({self.crc_checked} CRC-checked), "
            f"{self.corrupt} corrupt, {self.torn} torn"
        )


class ResultStore:
    """An append-only JSONL file of campaign result rows.

    The store is single-writer *across processes* (the campaign parent
    appends; workers hand rows back over the supervisor's result
    channel), so a crash can only tear the final line, and :meth:`load`
    tolerates exactly that.  *Within* a process every write path holds
    an advisory lock, so the daemon's concurrent request streams (many
    threads appending into one store) can never interleave torn rows --
    each row lands as one whole, fsync'd line.  Every written line
    carries a CRC-32 (schema 4), so corruption beyond a torn tail is
    detected on read; ``integrity`` holds the :class:`StoreIntegrity`
    of the most recent full read.
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self._handle = None
        self._write_lock = threading.Lock()
        self.integrity = StoreIntegrity()

    # -- writing -----------------------------------------------------

    def open_append(self) -> None:
        with self._write_lock:
            self._open_append_locked()

    def _open_append_locked(self) -> None:
        if self._handle is not None:
            return
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        # A campaign killed mid-append leaves a torn, newline-less tail;
        # terminate it so the next row starts on its own line instead of
        # concatenating into (and thereby losing) the fragment.
        if self._handle.tell() > 0:
            with open(self.path, "rb") as peek:
                peek.seek(-1, os.SEEK_END)
                ends_with_newline = peek.read(1) == b"\n"
            if not ends_with_newline:
                self._handle.write("\n")
                self._handle.flush()

    def append(self, row: dict[str, Any]) -> None:
        with self._write_lock:
            self._open_append_locked()
            self._handle.write(_store_line(row) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def append_damaged(self, row: dict[str, Any], damage: str) -> None:
        """Deliberately mis-write ``row`` -- the fault-injection
        harness's store-side hook (:mod:`repro.flow.faults`).

        ``"torn"`` writes the line truncated (unparseable JSON, the
        shape a crash mid-append leaves); ``"crc"`` writes valid JSON
        with a wrong checksum (the shape silent disk corruption
        leaves).  Either way the row is lost and the read side must
        skip-and-report it.
        """
        with self._write_lock:
            self._open_append_locked()
            if damage == "torn":
                line = _store_line(row)
                self._handle.write(line[: max(1, len(line) // 2)] + "\n")
            elif damage == "crc":
                payload = {k: v for k, v in row.items() if k != "crc"}
                good = _crc_of(payload)
                payload["crc"] = (
                    "00000000" if good != "00000000" else "ffffffff"
                )
                self._handle.write(_canonical(payload) + "\n")
            else:
                raise ValueError(f"unknown damage mode {damage!r}")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._write_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> ResultStore:
        self.open_append()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Yield clean rows in file order, skipping damaged lines.

        A line that fails to parse or fails its CRC is skipped (the
        job re-runs on resume) and tallied on ``self.integrity``:
        final-line parse failures count as torn (a crash mid-append),
        everything else as corrupt.  Rows from schema versions before
        the CRC (v1-v3) are yielded unchecked; the on-disk ``crc``
        field is stripped from yielded rows, so loaded rows round-trip
        what :meth:`append` was handed.
        """
        integrity = StoreIntegrity()
        self.integrity = integrity
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            lines = [
                line.strip() for line in handle.read().splitlines()
            ]
        lines = [line for line in lines if line]
        for index, line in enumerate(lines):
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    integrity.torn += 1
                else:
                    integrity.corrupt += 1
                continue
            if not isinstance(row, dict):
                integrity.corrupt += 1
                continue
            crc = row.pop("crc", None)
            if crc is not None:
                if crc != _crc_of(row):
                    integrity.corrupt += 1
                    continue
                integrity.crc_checked += 1
            integrity.rows += 1
            yield row

    def load(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    def verify(self) -> StoreIntegrity:
        """Scan the whole store and return its integrity picture."""
        for _row in self.iter_rows():
            pass
        return self.integrity

    def completed_ids(self, include_poisoned: bool = True) -> set[str]:
        """Job ids a resume should skip.

        Jobs with an ok row always count done (failed / timeout rows
        re-run, exactly as before).  Poisoned jobs -- a supervised
        campaign exhausted their retry budget -- are quarantined:
        skipped by a plain resume, re-attempted only when the caller
        passes ``include_poisoned=False`` (``--retry-failed``).
        """
        ok: set[str] = set()
        poisoned: set[str] = set()
        for row in self.iter_rows():
            job_id = row.get("job_id")
            if job_id is None:
                continue
            status = row.get("status")
            if status == "ok":
                ok.add(job_id)
            elif status == "poisoned":
                poisoned.add(job_id)
        if include_poisoned:
            return ok | poisoned
        return ok

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_rows())

    # -- maintenance -------------------------------------------------

    def compact(
        self, out_path: str | os.PathLike[str] | None = None
    ) -> CompactionStats:
        """Rewrite the store keeping only each job id's freshest row.

        A long-lived store accumulates superseded duplicates: every
        resume retries failed jobs, and aggregation already applies
        last-row-wins.  Compaction materializes that rule -- for each
        ``job_id`` only the *last* row survives (rows without a job id
        are all kept), in their original relative file order -- drops
        torn and corrupt lines along the way, and re-stamps every
        surviving row's CRC.

        In place (the default) the rewrite goes through a temp file in
        the same directory and an atomic ``os.replace``, so a crash
        mid-compaction leaves either the old or the new store, never a
        half-written one.  The store must not be open for appending.
        """
        if self._handle is not None:
            raise RuntimeError("close the store before compacting it")
        rows = self.load()
        destination = (
            os.fspath(out_path) if out_path is not None else self.path
        )
        return _write_compacted(rows, destination)


def _compact_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Keep each job id's *last* row (rows without an id all survive),
    preserving the original relative order."""
    last_index: dict[str, int] = {}
    for i, row in enumerate(rows):
        job_id = row.get("job_id")
        if job_id is not None:
            last_index[job_id] = i
    return [
        row
        for i, row in enumerate(rows)
        if row.get("job_id") is None or last_index[row["job_id"]] == i
    ]


def _write_compacted(
    rows: list[dict[str, Any]], destination: str
) -> CompactionStats:
    """Write the last-row-wins compaction of ``rows`` atomically."""
    kept_rows = _compact_rows(rows)
    parent = os.path.dirname(os.path.abspath(destination))
    os.makedirs(parent, exist_ok=True)
    tmp_path = os.path.join(
        parent, f".{os.path.basename(destination)}.compact.tmp"
    )
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for row in kept_rows:
            handle.write(_store_line(row) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, destination)
    return CompactionStats(
        total_rows=len(rows),
        kept_rows=len(kept_rows),
        dropped_rows=len(rows) - len(kept_rows),
        path=destination,
    )


def merge_stores(
    paths: Sequence[str | os.PathLike[str]],
    out_path: str | os.PathLike[str],
) -> CompactionStats:
    """Fold several stores into one, last-row-wins across all of them.

    This is how a sharded campaign (``repro campaign --shard K/N``)
    reassembles: each machine runs its shard into its own store, and
    the merge concatenates the stores *in argument order* and keeps
    each job id's freshest row -- so when the same job id appears in
    several inputs (a re-run shard, an overlapping resume), the later
    path wins, matching the single-store compaction rule.  The merged
    store is written atomically; the inputs are never modified.
    """
    if not paths:
        raise ValueError("merge_stores needs at least one input store")
    rows: list[dict[str, Any]] = []
    for path in paths:
        rows.extend(ResultStore(path).load())
    return _write_compacted(rows, os.fspath(out_path))


@dataclass
class StoreProgress:
    """Completion picture of one store (one campaign shard, usually).

    Beyond the ok/failed split, the retry-pressure tallies tell an
    operator how hard the supervisor is working: ``poisoned`` jobs
    exhausted their retry budget, ``retried`` freshest rows took more
    than one attempt (``max_attempt`` is the worst), and ``corrupt`` /
    ``torn`` count damaged lines the reader skipped.
    """

    path: str
    rows: int = 0
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    poisoned: int = 0
    superseded: int = 0
    retried: int = 0
    max_attempt: int = 1
    corrupt: int = 0
    torn: int = 0
    last_finished_at: str = ""

    def describe(self) -> str:
        extra = ""
        if self.poisoned:
            extra += f", {self.poisoned} poisoned"
        if self.retried:
            extra += (
                f", {self.retried} retried"
                f" (max attempt {self.max_attempt})"
            )
        if self.corrupt or self.torn:
            extra += (
                f", skipped {self.corrupt} corrupt +"
                f" {self.torn} torn line(s)"
            )
        tail = (
            f", last row {self.last_finished_at}"
            if self.last_finished_at
            else ""
        )
        return (
            f"{self.path}: {self.ok} ok, {self.failed} failed"
            f" ({self.timeouts} timeout), {self.superseded} superseded"
            f"{extra}{tail}"
        )


@dataclass
class CampaignProgress:
    """Cross-shard aggregation of several :class:`StoreProgress`.

    Shard counts apply last-row-wins *within* each store; the aggregate
    applies it again *across* stores in argument order -- exactly the
    rule :func:`merge_stores` materializes -- so ``ok`` / ``failed``
    here predict the post-merge store.  ``expected_jobs`` (when the
    caller knows the full grid size, e.g. from ``build_jobs``) turns
    the counts into a completion percentage.
    """

    stores: list[StoreProgress]
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    poisoned: int = 0
    retried: int = 0
    corrupt: int = 0
    torn: int = 0
    expected_jobs: int | None = None

    @property
    def completed(self) -> int:
        return self.ok + self.failed + self.poisoned

    @property
    def remaining(self) -> int | None:
        if self.expected_jobs is None:
            return None
        return max(0, self.expected_jobs - self.ok)

    @property
    def percent_ok(self) -> float | None:
        if not self.expected_jobs:
            return None
        return 100.0 * self.ok / self.expected_jobs

    def describe(self) -> str:
        lines = [store.describe() for store in self.stores]
        summary = (
            f"total: {self.ok} ok, {self.failed} failed "
            f"({self.timeouts} timeout) across {len(self.stores)} store(s)"
        )
        if self.poisoned:
            summary += f", {self.poisoned} poisoned"
        if self.retried:
            summary += f", {self.retried} retried"
        if self.corrupt or self.torn:
            summary += (
                f", skipped {self.corrupt} corrupt +"
                f" {self.torn} torn line(s)"
            )
        if self.expected_jobs:  # 0 has no meaningful percentage
            summary += (
                f"; {self.percent_ok:.1f}% of {self.expected_jobs} jobs ok, "
                f"{self.remaining} to go"
            )
        lines.append(summary)
        return "\n".join(lines)


def _freshest_by_job(rows: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Last-row-wins fold of ``rows`` (rows without a job id dropped)."""
    fresh: dict[str, dict[str, Any]] = {}
    for row in rows:
        job_id = row.get("job_id")
        if job_id is not None:
            fresh[job_id] = row
    return fresh


def store_progress(
    path: str | os.PathLike[str],
    rows: list[dict[str, Any]] | None = None,
    integrity: StoreIntegrity | None = None,
) -> StoreProgress:
    """Summarize one store: freshest-row status counts + staleness +
    retry pressure (attempts, poisonings, damaged lines).

    ``rows`` (with its read's ``integrity``) lets a caller that
    already loaded the store -- the cross-shard aggregation -- skip
    the re-read.
    """
    if rows is None:
        source = ResultStore(path)
        rows = source.load()
        integrity = source.integrity
    fresh = _freshest_by_job(rows)
    identified = sum(1 for row in rows if row.get("job_id") is not None)
    progress = StoreProgress(path=os.fspath(path), rows=len(rows))
    progress.superseded = identified - len(fresh)
    if integrity is not None:
        progress.corrupt = integrity.corrupt
        progress.torn = integrity.torn
    for row in fresh.values():
        status = row.get("status")
        if status == "ok":
            progress.ok += 1
        elif status == "poisoned":
            progress.poisoned += 1
        else:
            progress.failed += 1
            if row.get("timeout"):
                progress.timeouts += 1
        attempt = int(row.get("attempt", 1))
        if attempt > 1:
            progress.retried += 1
            progress.max_attempt = max(progress.max_attempt, attempt)
    progress.last_finished_at = max(
        (row.get("finished_at", "") for row in rows), default=""
    )
    return progress


def campaign_progress(
    paths: Sequence[str | os.PathLike[str]],
    expected_jobs: int | None = None,
) -> CampaignProgress:
    """Aggregate shard stores into one cross-campaign completion picture.

    The aggregate deduplicates job ids *across* the stores (later paths
    win, matching :func:`merge_stores`), so a job re-run on two shards
    counts once.
    """
    if not paths:
        raise ValueError("campaign_progress needs at least one store")
    stores = []
    merged_rows: list[dict[str, Any]] = []
    for path in paths:
        source = ResultStore(path)
        rows = source.load()
        stores.append(store_progress(path, rows, source.integrity))
        merged_rows.extend(rows)
    fresh = _freshest_by_job(merged_rows)
    progress = CampaignProgress(stores=stores, expected_jobs=expected_jobs)
    progress.corrupt = sum(store.corrupt for store in stores)
    progress.torn = sum(store.torn for store in stores)
    for row in fresh.values():
        status = row.get("status")
        if status == "ok":
            progress.ok += 1
        elif status == "poisoned":
            progress.poisoned += 1
        else:
            progress.failed += 1
            if row.get("timeout"):
                progress.timeouts += 1
        if int(row.get("attempt", 1)) > 1:
            progress.retried += 1
    return progress


class CompactionStats:
    """What :meth:`ResultStore.compact` did."""

    __slots__ = ("total_rows", "kept_rows", "dropped_rows", "path")

    def __init__(
        self, total_rows: int, kept_rows: int, dropped_rows: int, path: str
    ):
        self.total_rows = total_rows
        self.kept_rows = kept_rows
        self.dropped_rows = dropped_rows
        self.path = path

    def __repr__(self) -> str:
        return (
            f"CompactionStats(kept {self.kept_rows}/{self.total_rows}, "
            f"dropped {self.dropped_rows}, path={self.path!r})"
        )


def rows_equal(a: Iterable[dict], b: Iterable[dict]) -> bool:
    """Order-insensitive row-set equality, ignoring volatile fields."""

    def key(rows):
        return sorted(
            json.dumps(normalize_row(r), sort_keys=True) for r in rows
        )

    return key(a) == key(b)


__all__ = [
    "SCHEMA_VERSION",
    "VOLATILE_FIELDS",
    "VOLATILE_REPORT_FIELDS",
    "CampaignProgress",
    "CompactionStats",
    "ResultStore",
    "StoreIntegrity",
    "StoreProgress",
    "campaign_progress",
    "merge_stores",
    "normalize_row",
    "rows_equal",
    "store_progress",
]
