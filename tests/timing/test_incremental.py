"""Incremental-engine equivalence tests against the full-STA oracle.

Property-style: random generated networks x random demote / resize /
promote / converter-edge sequences, asserting after every step that the
incremental engine's arrival / required / load / slack / worst_delay
agree with a rebuild-from-scratch :class:`TimingAnalysis` on an
uncached calculator to 1e-9 (they are bit-identical in practice, since
the engine recomputes with the same kernels).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.generators import (
    mixed_datapath,
    pla_control,
    ripple_adder,
    sec_decoder,
)
from repro.core.state import ScalingOptions, ScalingState
from repro.flow.experiment import prepare_circuit
from repro.library.compass import build_compass_library
from repro.mapping.match import MatchTable
from repro.timing.delay import DelayCalculator, OUTPUT
from repro.timing.incremental import IncrementalTiming
from repro.timing.sta import TimingAnalysis

GENERATORS = {
    "adder": lambda: ripple_adder(width=6),
    "mixed": lambda: mixed_datapath(width=6, n_control=4, n_products=10,
                                    seed=11),
    "pla": lambda: pla_control(n_inputs=12, n_outputs=6, n_products=14,
                               seed=4),
    "sec": lambda: sec_decoder(data_bits=8),
}


@pytest.fixture(scope="module", params=sorted(GENERATORS))
def scaling_state(request, library):
    prepared = prepare_circuit(GENERATORS[request.param](), library,
                               match_table=MatchTable(library))
    return ScalingState(prepared.network, library, tspec=2.0 * prepared.tspec,
                        activity=prepared.activity)


def assert_equivalent(state, tolerance=1e-9):
    """Engine values must match a fresh full analysis on every query."""
    engine = state.timing()
    oracle = state.full_timing()
    assert isinstance(engine, IncrementalTiming)
    for name in state.network.nodes:
        assert engine.load[name] == pytest.approx(
            oracle.load[name], abs=tolerance), name
        assert engine.arrival[name] == pytest.approx(
            oracle.arrival[name], abs=tolerance), name
        assert engine.required[name] == pytest.approx(
            oracle.required[name], abs=tolerance), name
        assert engine.slack(name) == pytest.approx(
            oracle.slack(name), abs=tolerance), name
    assert engine.worst_delay == pytest.approx(oracle.worst_delay,
                                               abs=tolerance)
    assert engine.worst_slack == pytest.approx(oracle.worst_slack,
                                               abs=tolerance)
    assert engine.meets_timing() == oracle.meets_timing()


def random_move(rng, state):
    """Apply one random legal-ish mutation; returns a description."""
    gates = state.network.gates()
    kind = rng.choice(["demote", "promote", "resize", "edge", "direct"])
    if kind == "demote":
        high = [g for g in gates if not state.is_low(g)]
        if not high:
            return "noop"
        state.demote(rng.choice(high))
    elif kind == "promote":
        low = state.low_nodes()
        if not low:
            return "noop"
        state.promote(rng.choice(low))
    elif kind == "resize":
        name = rng.choice(gates)
        cell = state.network.nodes[name].cell
        variants = state.library.variants(cell.base)
        state.resize(name, rng.choice(variants))
    elif kind == "edge":
        # Toggle a converter on a random low->high edge (or drop one).
        if state.lc_edges and rng.random() < 0.5:
            state.lc_edges.discard(rng.choice(sorted(state.lc_edges)))
        else:
            low = state.low_nodes()
            if not low:
                return "noop"
            driver = rng.choice(low)
            readers = sorted(state.network.fanouts(driver))
            if not readers:
                return "noop"
            state.lc_edges.add((driver, rng.choice(readers)))
    else:
        # Direct side-table writes must invalidate through the observers.
        name = rng.choice(gates)
        state.levels[name] = not state.is_low(name)
    return kind


def test_initial_state_matches_oracle(scaling_state):
    assert_equivalent(scaling_state)


def test_random_move_sequences_match_oracle(scaling_state):
    rng = random.Random(1999)
    for step in range(60):
        random_move(rng, scaling_state)
        assert_equivalent(scaling_state)


def test_interleaved_queries_and_batches(scaling_state):
    """Batched mutations between queries converge to the same answer."""
    rng = random.Random(7)
    for _ in range(10):
        for _ in range(rng.randint(1, 6)):
            random_move(rng, scaling_state)
        assert_equivalent(scaling_state)


def _resizable_gate(state):
    for name in state.network.gates():
        bigger = state.library.next_size_up(state.network.nodes[name].cell)
        if bigger is not None:
            return name, bigger
    return None, None


def test_transaction_commit_matches_oracle(scaling_state):
    state = scaling_state
    name, bigger = _resizable_gate(state)
    if name is None:
        pytest.skip("no larger variant to try")
    cell = state.network.nodes[name].cell
    state.begin_move()
    state.resize(name, bigger)
    state.timing().refresh()
    state.commit_move()
    assert_equivalent(state)
    state.resize(name, cell)  # leave the fixture as we found it
    assert_equivalent(state)


def test_transaction_rollback_restores_exact_values(scaling_state):
    state = scaling_state
    engine = state.timing()
    before_arrival = dict(engine.arrival.items())
    before_required = dict(engine.required.items())
    before_load = dict(engine.load.items())

    name, bigger = _resizable_gate(state)
    if name is None:
        pytest.skip("no larger variant to try")
    cell = state.network.nodes[name].cell

    state.begin_move()
    state.resize(name, bigger)
    assert state.timing().worst_delay >= 0  # force a refresh inside
    state.resize(name, cell)
    state.rollback_move()

    after = state.timing()
    assert dict(after.arrival.items()) == before_arrival
    assert dict(after.required.items()) == before_required
    assert dict(after.load.items()) == before_load
    assert_equivalent(state)


def test_rejected_demotion_rolls_back_cleanly(scaling_state):
    state = scaling_state
    high = [g for g in state.network.gates() if not state.is_low(g)]
    if not high:
        pytest.skip("every gate already low")
    victim = high[0]
    state.begin_move()
    state.demote(victim)
    state.timing().refresh()
    state.promote(victim)
    state.rollback_move()
    assert_equivalent(state)


def test_engine_matches_after_full_scaling_run(library):
    """End-to-end: after run_dscale the engine still equals the oracle."""
    from repro.core.dscale import run_dscale

    prepared = prepare_circuit(
        mixed_datapath(width=6, n_control=4, n_products=10, seed=23),
        library, match_table=MatchTable(library))
    state = ScalingState(prepared.network, library, tspec=prepared.tspec,
                         activity=prepared.activity)
    run_dscale(state)
    assert_equivalent(state)


def test_incremental_and_full_modes_agree_end_to_end(library):
    """The two ScalingOptions modes produce identical scaling results."""
    from repro.core.gscale import run_gscale

    prepared = prepare_circuit(
        mixed_datapath(width=6, n_control=4, n_products=10, seed=31),
        library, match_table=MatchTable(library))

    results = {}
    for incremental in (False, True):
        state = ScalingState(
            prepared.fresh_copy(), library, tspec=prepared.tspec,
            activity=prepared.activity,
            options=ScalingOptions(incremental=incremental))
        run_gscale(state)
        results[incremental] = (
            sorted(state.low_nodes()),
            sorted(state.lc_edges),
            {name: node.cell.name
             for name, node in state.network.nodes.items()
             if node.cell is not None},
            state.power().total,
        )
    assert results[False] == results[True]


def test_view_reads_refresh_after_mutation(scaling_state):
    """Stale reads are impossible: views repair themselves on access."""
    state = scaling_state
    engine = state.timing()
    high = [g for g in state.network.gates() if not state.is_low(g)]
    if not high:
        pytest.skip("every gate already low")
    victim = high[-1]
    before = engine.arrival[victim]
    state.demote(victim)
    after = engine.arrival[victim]  # no explicit refresh() call
    assert after >= before  # Vlow twin is never faster
    assert after == pytest.approx(state.full_timing().arrival[victim],
                                  abs=1e-9)
    state.promote(victim)


def test_standalone_engine_tracks_manual_notes(mapped_adder, library):
    """The engine works without ScalingState when notes are hand-routed."""
    levels: dict[str, bool] = {}
    lc_edges: set[tuple[str, str]] = set()
    calc = DelayCalculator(mapped_adder, library, levels=levels,
                           lc_edges=lc_edges)
    engine = IncrementalTiming(calc, tspec=100.0)
    victim = next(
        n for n in mapped_adder.gates()
        if mapped_adder.fanouts(n) and n not in mapped_adder.outputs
    )
    levels[victim] = True
    for reader in mapped_adder.fanouts(victim):
        lc_edges.add((victim, reader))
    engine.note_variant_changed(victim)
    engine.note_net_changed(victim)
    oracle = TimingAnalysis(
        DelayCalculator(mapped_adder, library, levels=levels,
                        lc_edges=lc_edges), 100.0)
    for name in mapped_adder.nodes:
        assert engine.arrival[name] == pytest.approx(oracle.arrival[name],
                                                     abs=1e-9)
        assert engine.required[name] == pytest.approx(oracle.required[name],
                                                      abs=1e-9)
    assert engine.worst_delay == pytest.approx(oracle.worst_delay, abs=1e-9)


# ---------------------------------------------------------------------
# Multi-rail (3 and 4 rails) oracle properties.  Hypothesis drives
# random rail assignments and mutation sequences over the shared state;
# after every step the incremental engine must equal a rebuilt
# TimingAnalysis on an uncached calculator, including across what-if
# rollbacks.  The state is module-scoped on purpose: every reachable
# (levels, lc_edges, sizing) configuration is a valid input to the
# equivalence property, so examples legitimately compound.
# ---------------------------------------------------------------------

MULTI_RAILS = {
    "3rails": (5.0, 4.3, 3.6),
    "4rails": (5.0, 4.3, 3.6, 3.0),
}

_MOVE_KINDS = ("demote", "promote", "assign", "resize", "edge")


@pytest.fixture(scope="module", params=sorted(MULTI_RAILS))
def multirail_state(request):
    library = build_compass_library(rails=MULTI_RAILS[request.param])
    prepared = prepare_circuit(
        mixed_datapath(width=5, n_control=3, n_products=8, seed=13),
        library, match_table=MatchTable(library))
    return ScalingState(prepared.network, library,
                        tspec=2.5 * prepared.tspec,
                        activity=prepared.activity)


def multirail_move(rng, state, kind):
    """One random legal-ish multi-rail mutation through the observers."""
    gates = state.network.gates()
    lowest = state.n_rails - 1
    if kind == "demote":
        cands = [g for g in gates if state.rail_of(g) < lowest]
        if not cands:
            return
        state.demote(rng.choice(cands))
    elif kind == "promote":
        cands = [g for g in gates if state.rail_of(g) > 0]
        if not cands:
            return
        state.promote(rng.choice(cands))
    elif kind == "assign":
        # Direct rail-index writes must reach the engine via the
        # observer, including multi-step jumps (0 -> 3, 2 -> 1, ...).
        state.levels[rng.choice(gates)] = rng.randrange(state.n_rails)
    elif kind == "resize":
        name = rng.choice(gates)
        cell = state.network.nodes[name].cell
        state.resize(name, rng.choice(state.library.variants(cell.base)))
    else:
        if state.lc_edges and rng.random() < 0.5:
            state.lc_edges.discard(rng.choice(sorted(state.lc_edges)))
        else:
            drivers = [g for g in gates
                       if state.rail_of(g) > 0 and state.network.fanouts(g)]
            if not drivers:
                return
            driver = rng.choice(drivers)
            readers = sorted(state.network.fanouts(driver))
            state.lc_edges.add((driver, rng.choice(readers)))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1),
       kinds=st.lists(st.sampled_from(_MOVE_KINDS), min_size=1, max_size=8))
def test_multirail_random_sequences_match_oracle(multirail_state, seed,
                                                 kinds):
    rng = random.Random(seed)
    for kind in kinds:
        multirail_move(rng, multirail_state, kind)
        assert_equivalent(multirail_state)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1),
       kinds=st.lists(st.sampled_from(_MOVE_KINDS), min_size=1, max_size=4))
def test_multirail_rollback_restores_exact_values(multirail_state, seed,
                                                  kinds):
    """A what-if window over random multi-rail moves rolls back exactly."""
    state = multirail_state
    engine = state.timing()
    engine.refresh()
    before_arrival = dict(engine.arrival.items())
    before_required = dict(engine.required.items())
    before_load = dict(engine.load.items())
    levels_before = dict(state.levels)
    edges_before = set(state.lc_edges)
    cells_before = {name: node.cell
                    for name, node in state.network.nodes.items()
                    if node.cell is not None}

    rng = random.Random(seed)
    state.begin_move()
    for kind in kinds:
        multirail_move(rng, state, kind)
    assert state.timing().worst_delay >= 0  # force a refresh inside

    # Revert our own mutations (the journal only covers the arrays) ...
    for name, cell in cells_before.items():
        if state.network.nodes[name].cell is not cell:
            state.resize(name, cell)
    for name in list(state.levels):
        state.levels[name] = levels_before.get(name, 0)
    for edge in list(state.lc_edges):
        if edge not in edges_before:
            state.lc_edges.discard(edge)
    state.lc_edges.update(edges_before)
    # ... then restore the timing arrays from the journal.
    state.rollback_move()

    after = state.timing()
    assert dict(after.arrival.items()) == before_arrival
    assert dict(after.required.items()) == before_required
    assert dict(after.load.items()) == before_load
    assert_equivalent(state)


def test_multirail_full_dscale_matches_oracle():
    """End-to-end on three rails: Dscale leaves engine == oracle and a
    legal state that actually uses the deepest rail."""
    from repro.core.dscale import run_dscale

    library = build_compass_library(rails=(5.0, 4.3, 3.6))
    prepared = prepare_circuit(
        mixed_datapath(width=6, n_control=4, n_products=10, seed=23),
        library, match_table=MatchTable(library))
    state = ScalingState(prepared.network, library,
                         tspec=1.6 * prepared.tspec,
                         activity=prepared.activity)
    run_dscale(state)
    assert_equivalent(state)
    histogram = state.rail_histogram()
    assert histogram[2] > 0  # the third rail is genuinely exercised
    assert state.power().total > 0


def test_output_boundary_converter_equivalence(library):
    """lc_at_outputs: the (out, OUTPUT) edge flows through the engine."""
    prepared = prepare_circuit(ripple_adder(width=4), library,
                               match_table=MatchTable(library))
    state = ScalingState(
        prepared.network, library, tspec=3.0 * prepared.tspec,
        activity=prepared.activity,
        options=ScalingOptions(lc_at_outputs=True))
    out = next(
        o for o in state.network.outputs
        if not state.network.nodes[o].is_input
    )
    state.demote(out)
    assert (out, OUTPUT) in state.lc_edges
    assert_equivalent(state)
    state.promote(out)
    assert_equivalent(state)
