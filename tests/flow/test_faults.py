"""FaultPlan unit tests: spec parsing, seeded determinism, hook firing."""

import pytest

from repro.flow.faults import (
    KINDS,
    FaultPlan,
    InjectedFault,
)

JOB_IDS = [f"c{i}:cvs:v4.3:s1.2" for i in range(10)]


def test_from_spec_parses_counts_and_draws_victims():
    plan = FaultPlan.from_spec(
        "kill-before:2,raise:1,corrupt-row:1", JOB_IDS, seed=7
    )
    assert len(plan.kill_before) == 2
    assert len(plan.raise_on) == 1
    assert len(plan.corrupt_row) == 1
    assert plan.kill_after == () and plan.hang_on == ()
    # Victims are distinct jobs drawn from the campaign's id list.
    assert len(plan.victims) == 4
    assert plan.victims <= set(JOB_IDS)


def test_from_spec_is_deterministic_in_the_seed():
    a = FaultPlan.from_spec("kill-before:2,hang:1", JOB_IDS, seed=3)
    b = FaultPlan.from_spec("kill-before:2,hang:1", JOB_IDS, seed=3)
    c = FaultPlan.from_spec("kill-before:2,hang:1", JOB_IDS, seed=4)
    assert a == b
    assert a != c


def test_from_spec_validation():
    with pytest.raises(ValueError, match="kind:count"):
        FaultPlan.from_spec("kill-before", JOB_IDS)
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_spec("segfault:1", JOB_IDS)
    with pytest.raises(ValueError, match=">= 1"):
        FaultPlan.from_spec("raise:0", JOB_IDS)
    with pytest.raises(ValueError, match="only"):
        FaultPlan.from_spec("raise:3", JOB_IDS[:2])


def test_fires_respects_max_fires():
    (victim,) = FaultPlan.from_spec("raise:1", JOB_IDS, seed=1).raise_on
    plan = FaultPlan(raise_on=(victim,), max_fires=2)
    assert plan.fires("raise", victim, attempt=1)
    assert plan.fires("raise", victim, attempt=2)
    assert not plan.fires("raise", victim, attempt=3)
    assert not plan.fires("raise", "someone-else", attempt=1)
    with pytest.raises(ValueError, match="unknown fault kind"):
        plan.fires("segfault", victim)


def test_store_damage_for_maps_kinds():
    plan = FaultPlan(torn_row=("a",), corrupt_row=("b",))
    assert plan.store_damage_for("a") == "torn"
    assert plan.store_damage_for("b") == "crc"
    assert plan.store_damage_for("c") is None
    assert plan.store_damage_for("a", attempt=2) is None  # retry is clean


def test_needs_supervisor_only_for_process_level_faults():
    assert not FaultPlan().needs_supervisor
    assert not FaultPlan(raise_on=("a",), torn_row=("b",)).needs_supervisor
    assert FaultPlan(kill_before=("a",)).needs_supervisor
    assert FaultPlan(kill_after=("a",)).needs_supervisor
    assert FaultPlan(hang_on=("a",)).needs_supervisor


def test_check_raise_raises_only_for_armed_jobs():
    plan = FaultPlan(raise_on=("a",))
    plan.check_raise("b", attempt=1)  # no-op
    plan.check_raise("a", attempt=2)  # beyond max_fires: no-op
    with pytest.raises(InjectedFault, match="attempt 1"):
        plan.check_raise("a", attempt=1)


def test_describe_lists_armed_kinds():
    plan = FaultPlan.from_spec("hang:1,torn-row:2", JOB_IDS, seed=0)
    text = plan.describe()
    assert "hang:1" in text and "torn-row:2" in text
    assert "empty" in FaultPlan().describe()
    assert set(KINDS) == {
        "kill-before", "kill-after", "raise", "hang",
        "torn-row", "corrupt-row",
    }
