"""Unified result artifacts: one shape from flow run to store row.

Historically a scaling run had three disjoint result shapes -- the
per-run :class:`ScalingReport`, the per-circuit :class:`CircuitResult`
table row, and the campaign store's JSON row dict.  They collapse here:
:class:`RunArtifact` is the canonical record of one flow run, its
versioned :meth:`RunArtifact.to_row` / :meth:`RunArtifact.from_row`
speak exactly the store's on-disk schema (``SCHEMA_VERSION``), the
:class:`ScalingReport` survives as the artifact's nested metrics block,
and :class:`CircuitResult` is an aggregation view assembled from
artifacts by :func:`artifacts_to_results`.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from datetime import UTC, datetime
from typing import Any

from repro.api.config import DEFAULT_SLACK_FACTOR, DEFAULT_VDD_LOW

SCHEMA_VERSION = 4
"""Store-row schema version.  Version 1 had no ``rails`` / ``timeout``
fields; version 2 had no ``cost_model`` field (and its reports no
``moves`` block); version 3 had no ``attempt`` field, no ``crc``
line checksum, and no ``"poisoned"`` status.  Readers treat every
absence as the classic shape (dual-Vdd, paper cost model, no move
statistics, first attempt, unchecked line)."""

STATUSES = ("ok", "failed", "poisoned")
"""Row statuses.  ``failed`` rows re-run on a plain ``--resume``;
``poisoned`` rows are quarantined (a supervised campaign gave up on
them after ``max_attempts`` worker deaths) and re-run only under
``--resume --retry-failed``."""

DEFAULT_COST_MODEL = "paper"
"""The seed paper's move-pricing arithmetic (see
:mod:`repro.core.moves`); rows carrying it keep their historical job
ids."""


def flow_job_id(
    circuit: str,
    method: str,
    vdd_low: float = DEFAULT_VDD_LOW,
    slack_factor: float = DEFAULT_SLACK_FACTOR,
    rails: tuple[float, ...] = (),
    cost_model: str = DEFAULT_COST_MODEL,
) -> str:
    """The deterministic id one (circuit, method, grid-point) run keys on.

    Campaign resume, store compaction, and shard partitioning all agree
    on this format: ``C432:gscale:v4.3:s1.2`` for classic dual-Vdd jobs
    and ``C432:gscale:r5-4.3-3.6:s1.2`` for explicit rail sets.  A
    non-default cost model appends a ``:c<name>`` segment
    (``C432:dscale:v4.3:s1.2:cplacement``), so historical ids -- and
    every store written before the cost-model grid dimension existed --
    stay valid for resume.
    """
    if rails:
        grid = "r" + "-".join(f"{v:g}" for v in rails)
    else:
        grid = f"v{vdd_low:g}"
    job_id = f"{circuit}:{method}:{grid}:s{slack_factor:g}"
    if cost_model and cost_model != DEFAULT_COST_MODEL:
        job_id += f":c{cost_model}"
    return job_id


@dataclass(frozen=True)
class ScalingReport:
    """Summary of one scaling run (a row of the paper's tables).

    ``moves`` is the run's per-move-kind counter snapshot
    (:meth:`repro.core.moves.MoveStats.as_dict`); ``None`` on rows
    written before the move engine existed.
    """

    method: str
    power_before_uw: float
    power_after_uw: float
    improvement_pct: float
    n_gates: int
    n_low: int
    low_ratio: float
    n_converters: int
    n_resized: int
    area_increase_ratio: float  # sizing-only (the paper's AreaInc column)
    worst_delay_ns: float
    tspec_ns: float
    runtime_s: float
    moves: dict | None = None


@dataclass
class CircuitResult:
    """All three algorithms' results on one circuit (one table row)."""

    name: str
    gates: int
    org_power_uw: float
    min_delay_ns: float
    tspec_ns: float
    reports: dict[str, ScalingReport] = field(default_factory=dict)

    def improvement(self, method: str) -> float:
        return self.reports[method].improvement_pct


@dataclass
class RunArtifact:
    """The complete record of one flow run: metrics plus provenance.

    ``status == "ok"`` artifacts carry the preparation scalars and the
    nested :class:`ScalingReport`; ``status == "failed"`` /
    ``"poisoned"`` artifacts carry the error / timeout fields instead.
    ``attempt`` is the 1-based execution attempt that produced the row
    (a supervised campaign re-runs jobs whose worker died, so a
    surviving row may be attempt 2+).  ``runtime_s`` / ``finished_at``
    / ``worker_pid`` / ``attempt`` are volatile (excluded from row
    equality by :func:`repro.flow.store.normalize_row`); ``to_row``
    stamps ``finished_at`` / ``worker_pid`` at serialization time when
    unset, exactly as the campaign workers always did.
    """

    circuit: str
    method: str
    vdd_low: float = DEFAULT_VDD_LOW
    slack_factor: float = DEFAULT_SLACK_FACTOR
    rails: tuple[float, ...] = ()
    cost_model: str = DEFAULT_COST_MODEL
    status: str = "ok"
    gates: int = 0
    org_power_uw: float = 0.0
    min_delay_ns: float = 0.0
    tspec_ns: float = 0.0
    report: ScalingReport | None = None
    error: str = ""
    timeout: bool = False
    traceback: str = ""
    attempt: int = 1
    runtime_s: float = 0.0
    finished_at: str = ""
    worker_pid: int = 0
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.rails = tuple(float(v) for v in self.rails)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def job_id(self) -> str:
        return flow_job_id(
            self.circuit,
            self.method,
            self.vdd_low,
            self.slack_factor,
            self.rails,
            self.cost_model,
        )

    # -- the store schema -------------------------------------------

    def to_row(self) -> dict[str, Any]:
        """One store row (the JSONL dict campaigns append).

        Emits the current ``SCHEMA_VERSION`` regardless of the schema a
        ``from_row`` source row carried -- rewriting a v1 row upgrades
        it.
        """
        row: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "job_id": self.job_id,
            "status": self.status,
            "circuit": self.circuit,
            "method": self.method,
            "vdd_low": self.vdd_low,
            "slack_factor": self.slack_factor,
            "rails": list(self.rails),
            "cost_model": self.cost_model,
        }
        if self.status == "ok":
            if self.report is None:
                raise ValueError("an ok artifact needs a ScalingReport")
            row.update(
                {
                    "gates": self.gates,
                    "org_power_uw": self.org_power_uw,
                    "min_delay_ns": self.min_delay_ns,
                    "tspec_ns": self.tspec_ns,
                    "report": asdict(self.report),
                }
            )
        else:
            row.update(
                {
                    "error": self.error,
                    "timeout": self.timeout,
                    "traceback": self.traceback,
                }
            )
        row.update(
            {
                "attempt": self.attempt,
                "runtime_s": self.runtime_s,
                "finished_at": (
                    self.finished_at or datetime.now(UTC).isoformat()
                ),
                "worker_pid": self.worker_pid or os.getpid(),
            }
        )
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> RunArtifact:
        """Parse a store row of any supported schema version.

        Schema-1 rows (no ``rails`` / ``timeout``) normalize to the
        classic dual-Vdd shape; rows from a *newer* schema than this
        reader are rejected rather than silently misread.
        """
        schema = int(row.get("schema", 1))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"store row schema {schema} is newer than this reader "
                f"(schema {SCHEMA_VERSION}); upgrade repro to read it"
            )
        report = row.get("report")
        return cls(
            circuit=row.get("circuit", ""),
            method=row.get("method", ""),
            vdd_low=row.get("vdd_low", DEFAULT_VDD_LOW),
            slack_factor=row.get("slack_factor", DEFAULT_SLACK_FACTOR),
            rails=tuple(row.get("rails") or ()),
            cost_model=row.get("cost_model", DEFAULT_COST_MODEL),
            status=row.get("status", "ok"),
            gates=row.get("gates", 0),
            org_power_uw=row.get("org_power_uw", 0.0),
            min_delay_ns=row.get("min_delay_ns", 0.0),
            tspec_ns=row.get("tspec_ns", 0.0),
            report=(
                ScalingReport(**report) if isinstance(report, dict) else None
            ),
            error=row.get("error", ""),
            timeout=bool(row.get("timeout", False)),
            traceback=row.get("traceback", ""),
            attempt=int(row.get("attempt", 1)),
            runtime_s=row.get("runtime_s", 0.0),
            finished_at=row.get("finished_at", ""),
            worker_pid=row.get("worker_pid", 0),
            schema=schema,
        )

    @classmethod
    def from_failure(
        cls,
        circuit: str,
        method: str,
        exc: BaseException,
        *,
        vdd_low: float = DEFAULT_VDD_LOW,
        slack_factor: float = DEFAULT_SLACK_FACTOR,
        rails: tuple[float, ...] = (),
        cost_model: str = DEFAULT_COST_MODEL,
        timeout: bool = False,
        runtime_s: float = 0.0,
        attempt: int = 1,
        status: str = "failed",
    ) -> RunArtifact:
        """A failure artifact; ``status="poisoned"`` quarantines the
        job (a supervised campaign exhausted its retry budget)."""
        import traceback as tb

        return cls(
            circuit=circuit,
            method=method,
            vdd_low=vdd_low,
            slack_factor=slack_factor,
            rails=rails,
            cost_model=cost_model,
            status=status,
            error=f"{type(exc).__name__}: {exc}",
            timeout=timeout,
            traceback="".join(
                tb.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempt=attempt,
            runtime_s=runtime_s,
        )


def artifacts_to_results(
    artifacts: list[RunArtifact] | tuple[RunArtifact, ...],
) -> list[CircuitResult]:
    """Fold ok-artifacts into per-circuit results, in first-seen order.

    Later artifacts for the same circuit refresh the per-circuit
    scalars, so a mixed-generation sequence cannot pin stale
    preparation numbers (the campaign's last-row-wins rule).
    """
    by_circuit: dict[str, CircuitResult] = {}
    for artifact in artifacts:
        if not artifact.ok:
            continue
        result = by_circuit.get(artifact.circuit)
        if result is None:
            result = CircuitResult(
                name=artifact.circuit,
                gates=artifact.gates,
                org_power_uw=artifact.org_power_uw,
                min_delay_ns=artifact.min_delay_ns,
                tspec_ns=artifact.tspec_ns,
            )
            by_circuit[artifact.circuit] = result
        result.reports[artifact.method] = artifact.report
        result.gates = artifact.gates
        result.org_power_uw = artifact.org_power_uw
        result.min_delay_ns = artifact.min_delay_ns
        result.tspec_ns = artifact.tspec_ns
    return list(by_circuit.values())


__all__ = [
    "DEFAULT_COST_MODEL",
    "SCHEMA_VERSION",
    "STATUSES",
    "CircuitResult",
    "RunArtifact",
    "ScalingReport",
    "artifacts_to_results",
    "flow_job_id",
]
