"""FlowConfig declaration and serialization round-trips."""

import json

import pytest

from repro.api import DEFAULT_SLACK_FACTOR, DEFAULT_VDD_LOW, FlowConfig
from repro.core.state import ScalingOptions


def test_defaults_match_the_paper():
    cfg = FlowConfig()
    assert cfg.method == "gscale"
    assert cfg.vdd_low == DEFAULT_VDD_LOW == 4.3
    assert cfg.slack_factor == DEFAULT_SLACK_FACTOR == 1.2
    assert cfg.max_iter == 10
    assert cfg.area_budget == 0.10
    assert cfg.materialize is False
    assert cfg.options == ScalingOptions()


def test_json_round_trip_is_exact():
    cfg = FlowConfig(circuit="C432", method="dscale", vdd_low=3.7,
                     slack_factor=1.4, max_iter=5, area_budget=0.02,
                     materialize=True,
                     options=ScalingOptions(lc_kind="cm", n_vectors=64))
    assert FlowConfig.loads(cfg.dumps()) == cfg


def test_json_round_trip_with_rails():
    cfg = FlowConfig(circuit="rot", rails=(5.0, 4.3, 3.6))
    again = FlowConfig.loads(cfg.dumps())
    assert again == cfg
    assert again.rails == (5.0, 4.3, 3.6)  # tuple restored, not list


def test_toml_round_trip_is_exact():
    cfg = FlowConfig(circuit="C880", method="cvs", rails=(1.8, 1.0, 0.6),
                     slack_factor=1.1,
                     options=ScalingOptions(activity_seed=7))
    assert FlowConfig.from_toml(cfg.to_toml()) == cfg


def test_toml_survives_exotic_floats():
    cfg = FlowConfig(options=ScalingOptions(timing_tolerance=1e-9,
                                            po_load=0.0))
    assert FlowConfig.from_toml(cfg.to_toml()) == cfg


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FlowConfig field"):
        FlowConfig.from_dict({"circuit": "C432", "voltage": 4.3})


def test_from_dict_rejects_unknown_option_fields():
    with pytest.raises(ValueError, match="unknown ScalingOptions field"):
        FlowConfig.from_dict({"options": {"lc_kind": "pg", "bogus": 1}})


def test_options_dict_coerces_and_rails_normalize():
    cfg = FlowConfig(rails=[5, 4.3], options={"lc_kind": "cm"})
    assert cfg.rails == (5.0, 4.3)
    assert isinstance(cfg.options, ScalingOptions)
    assert cfg.options.lc_kind == "cm"


def test_rail_key_distinguishes_dual_and_msv():
    assert FlowConfig(vdd_low=4.0).rail_key == (4.0,)
    assert FlowConfig(rails=(5.0, 4.3, 3.6)).rail_key == (5.0, 4.3, 3.6)


def test_replace_returns_new_frozen_config():
    cfg = FlowConfig(circuit="C432")
    other = cfg.replace(method="cvs")
    assert other.method == "cvs" and cfg.method == "gscale"
    assert other.circuit == "C432"
    with pytest.raises(Exception):
        cfg.method = "dscale"  # frozen


def test_dumps_is_plain_json():
    data = json.loads(FlowConfig(circuit="pm1").dumps())
    assert data["circuit"] == "pm1"
    assert isinstance(data["rails"], list)
    assert isinstance(data["options"], dict)


def test_build_library_honors_rails():
    dual = FlowConfig(vdd_low=4.0).build_library()
    assert dual.rails == (5.0, 4.0)
    msv = FlowConfig(rails=(5.0, 4.3, 3.6)).build_library()
    assert msv.rails == (5.0, 4.3, 3.6)
