"""Voltage characterization: the SPICE substitute.

The paper enriched its COMPASS library by re-simulating every cell with
SPICE at the low supply.  We model the same physics analytically with the
alpha-power-law MOSFET model (Sakurai-Newton):

    t_d(Vdd)  proportional to  Vdd / (Vdd - Vth)^alpha

with ``alpha = 2.0`` (the classic long-channel exponent; a 0.6 um
process at a 5 V rail sits near it, consistent with the ~1.8x delay
ratio the era's libraries reported for 5 V -> 3.3 V operation) and
``Vth = 0.8 V``.  Dynamic energy scales as ``Vdd**2`` (equation (1)).

At the paper's (5 V, 4.3 V) pair this yields a 1.24x delay penalty and
a 0.74x energy multiplier per demoted gate.  The penalty exceeding the
flow's 20% timing relaxation is what makes demotion *selective* -- the
regime all three algorithms (and the paper's partial Table 2 ratios)
live in.
"""

from __future__ import annotations

from dataclasses import replace

from repro.library.cells import Cell

DEFAULT_VTH = 0.8
DEFAULT_ALPHA = 2.0


def delay_scale(vdd: float, vdd_ref: float, vth: float = DEFAULT_VTH,
                alpha: float = DEFAULT_ALPHA) -> float:
    """Delay multiplier when moving a gate from ``vdd_ref`` to ``vdd``."""
    if vdd <= vth or vdd_ref <= vth:
        raise ValueError(
            f"supply ({vdd}, {vdd_ref}) must exceed the threshold {vth}"
        )
    def drive(v: float) -> float:
        return v / (v - vth) ** alpha
    return drive(vdd) / drive(vdd_ref)


def energy_scale(vdd: float, vdd_ref: float) -> float:
    """Dynamic-energy multiplier (quadratic in the supply, eq. (1))."""
    if vdd <= 0 or vdd_ref <= 0:
        raise ValueError("supplies must be positive")
    return (vdd / vdd_ref) ** 2


def derate_cell(cell: Cell, vdd: float, vth: float = DEFAULT_VTH,
                alpha: float = DEFAULT_ALPHA,
                suffix: str | None = None) -> Cell:
    """Produce the same cell characterized at a different supply.

    Intrinsic delays and drive resistance stretch by the alpha-power
    factor; internal energy shrinks quadratically; input capacitance and
    area are voltage-independent (same transistors).  By default the
    twin is named ``<name>_lv`` when slower than the original and
    ``<name>_hv`` otherwise; libraries with more than two rails pass an
    explicit ``suffix`` to keep per-rail names unique.
    """
    t_scale = delay_scale(vdd, cell.vdd, vth=vth, alpha=alpha)
    e_scale = energy_scale(vdd, cell.vdd)
    if suffix is None:
        suffix = "_lv" if t_scale >= 1.0 else "_hv"
    return replace(
        cell,
        name=cell.name + suffix,
        intrinsics=tuple(t * t_scale for t in cell.intrinsics),
        drive_res=cell.drive_res * t_scale,
        internal_energy=cell.internal_energy * e_scale,
        vdd=vdd,
    )


def converter_for_pair(cell: Cell, from_vdd: float, to_vdd: float,
                       vth: float = DEFAULT_VTH,
                       alpha: float = DEFAULT_ALPHA,
                       suffix: str | None = None) -> Cell:
    """Characterize a level shifter for one (driver rail, reader rail) pair.

    A low-to-high shifter's output stage swings at the *destination*
    rail, so its delay/energy derating is that of a cell supplied at
    ``to_vdd``.  The source rail only sets the input overdrive of the
    first stage; in the pass-gate/keeper and cross-coupled designs the
    paper uses, the output stage dominates the pin-to-pin delay, so the
    linear model is input-swing-independent and every ``(from, to)``
    pair collapses to a characterization at ``to_vdd``.  The pair is
    still validated here: a "shifter" that does not shift strictly
    upward is a wiring bug.
    """
    if from_vdd >= to_vdd:
        raise ValueError(
            f"level shifter must convert upward: {from_vdd} V -> {to_vdd} V"
        )
    if not cell.is_level_converter:
        raise ValueError(f"{cell.name!r} is not a level-converter cell")
    if to_vdd == cell.vdd:
        return cell
    return derate_cell(cell, to_vdd, vth=vth, alpha=alpha, suffix=suffix)


def converter_pairs(rails) -> list[tuple[int, int]]:
    """Every (source, destination) rail-index pair a shifter can serve.

    With adjacent-only demotion a driver on rail ``s`` only ever feeds
    shifters toward ``s - 1``; non-adjacent demotion lets any rail
    ``s >= 1`` drive readers on *every* shallower rail ``d < s``, so
    the library must cover all upward pairs -- ``n * (n - 1) / 2`` of
    them.  Because the linear shifter model is input-swing-independent
    (see :func:`converter_for_pair`), every pair sharing one
    destination collapses onto that destination's characterization;
    this enumeration is the contract tests and enrichment validate
    against.  Pairs are returned destination-major:
    ``(1, 0), (2, 0), ..., (2, 1), (3, 1), ...``.
    """
    rails = tuple(float(v) for v in rails)
    if len(rails) < 2:
        raise ValueError(
            f"a rail set needs at least two supplies, got {rails}"
        )
    if any(b >= a for a, b in zip(rails, rails[1:])):
        raise ValueError(
            f"rails must be strictly descending (highest first), got {rails}"
        )
    return [
        (source, destination)
        for destination in range(len(rails) - 1)
        for source in range(destination + 1, len(rails))
    ]


def converter_cells_for_rails(cell: Cell, rails, vth: float = DEFAULT_VTH,
                              alpha: float = DEFAULT_ALPHA
                              ) -> dict[tuple[int, int], Cell]:
    """Characterize one shifter base for every upward rail pair.

    Builds the full (source, destination) -> cell map of
    :func:`converter_pairs` -- non-adjacent pairs included -- by
    re-characterizing ``cell`` at each destination supply.  All pairs
    sharing a destination map to the *same* cell object, making the
    swing-independence of the model explicit and giving callers (and
    tests) one place to check that a multi-rail library can serve any
    demotion depth.
    """
    rails = tuple(float(v) for v in rails)
    per_destination: dict[int, Cell] = {}
    table: dict[tuple[int, int], Cell] = {}
    for source, destination in converter_pairs(rails):
        if destination not in per_destination:
            per_destination[destination] = converter_for_pair(
                cell, from_vdd=rails[source], to_vdd=rails[destination],
                vth=vth, alpha=alpha, suffix=f"_r{destination}",
            )
        table[(source, destination)] = per_destination[destination]
    return table


def dc_leakage_power(vdd_high: float, vdd_low: float, vth: float = DEFAULT_VTH,
                     i_unit_ua: float = 12.0) -> float:
    """Static DC power (uW) of one *unconverted* low-to-high crossing.

    When a low-swing signal drives a high-voltage gate directly, the PMOS
    network never fully turns off and conducts while the input sits high.
    We model the resulting rail-to-rail current with a square-law
    overdrive on the PMOS: ``I = i_unit * (Vgs_residual / Vth)**2`` where
    ``Vgs_residual = Vdd_high - Vdd_low``.  The paper forbids this
    configuration outright; the model exists so tests and examples can
    demonstrate *why* level restoration is mandatory.
    """
    residual = vdd_high - vdd_low
    if residual <= 0:
        return 0.0
    current_ua = i_unit_ua * (residual / vth) ** 2
    # Conducts roughly half the time under random data.
    return 0.5 * current_ua * vdd_high


__all__ = [
    "DEFAULT_VTH",
    "DEFAULT_ALPHA",
    "delay_scale",
    "energy_scale",
    "derate_cell",
    "converter_cells_for_rails",
    "converter_for_pair",
    "converter_pairs",
    "dc_leakage_power",
]
