"""Event-driven timed logic simulation with glitch counting.

The zero-delay activity of :mod:`repro.power.activity` misses glitches:
unequal path delays can make a gate output toggle several times within
one cycle.  This module replays random vector pairs through a transport-
delay event simulation using the same pin-to-pin delay calculator as the
timing analysis, and reports *total* transitions per cycle including
glitches.  It is an optional, slower estimator used by the glitch
sensitivity example and tests; the main flow uses the zero-delay method,
matching SIS's default.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Mapping

from repro.netlist.network import Network
from repro.timing.delay import DelayCalculator


def timed_toggle_counts(network: Network, calculator: DelayCalculator,
                        n_vectors: int = 64, seed: int = 1999,
                        input_probability: float = 0.5) -> dict[str, float]:
    """Transitions per cycle per net, glitches included.

    Each of ``n_vectors - 1`` cycles applies a new random primary-input
    vector at t=0 and propagates events until quiescence.  Converter
    delays on low-to-high edges are folded into the reader's pin arrival
    just as in :class:`repro.timing.sta.TimingAnalysis`.
    """
    if n_vectors < 2:
        raise ValueError("need at least two vectors")
    rng = random.Random(seed)
    order = network.topological()
    loads = {name: calculator.load(name) for name in order}
    toggles = {name: 0 for name in order}

    values: dict[str, int] = {}
    first = {name: rng.random() < input_probability for name in network.inputs}
    values = network.evaluate({name: int(bit) for name, bit in first.items()})

    for _ in range(n_vectors - 1):
        queue: list[tuple[float, int, str, int]] = []
        sequence = 0
        pending: dict[str, int] = {}

        def schedule(time: float, name: str, value: int) -> None:
            nonlocal sequence
            heapq.heappush(queue, (time, sequence, name, value))
            sequence += 1

        for input_name in network.inputs:
            new_bit = int(rng.random() < input_probability)
            if new_bit != values[input_name]:
                schedule(0.0, input_name, new_bit)

        while queue:
            time, _, name, value = heapq.heappop(queue)
            if values[name] == value:
                continue
            values[name] = value
            toggles[name] += 1
            for reader in network.fanouts(name):
                node = network.nodes[reader]
                cell = calculator.variant(reader)
                extra = calculator.edge_extra_delay(name, reader)
                new_output = node.function.evaluate(
                    [values[f] for f in node.fanins]
                )
                scheduled = pending.get(reader, values[reader])
                if new_output == scheduled:
                    continue
                pin_delays = [
                    cell.pin_delay(pin, loads[reader])
                    for pin, fanin in enumerate(node.fanins)
                    if fanin == name
                ]
                delay = max(pin_delays) + extra
                pending[reader] = new_output
                schedule(time + delay, reader, new_output)

    cycles = n_vectors - 1
    return {name: count / cycles for name, count in toggles.items()}


def glitch_factor(zero_delay: Mapping[str, float],
                  timed: Mapping[str, float]) -> float:
    """Ratio of timed to zero-delay total activity (>= 1 in expectation)."""
    base = sum(zero_delay.values())
    if base == 0:
        return 1.0
    return sum(timed.values()) / base


__all__ = ["timed_toggle_counts", "glitch_factor"]
