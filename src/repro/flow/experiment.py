"""Per-circuit experiment pipeline (the paper's section 4 setup).

For every circuit: technology-independent optimization (the
``script.rugged`` stand-in), minimum-delay mapping (``map -n1 -AFG``
with zero required time), measurement of the minimum delay, relaxation
of the constraint by 20% (``slack_factor = 1.2``), an area-recovery
remap under the relaxed constraint, and finally the three scaling
algorithms -- each on its own copy of the mapped netlist, sharing one
switching-activity measurement, exactly as the paper compares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.mcnc import load_circuit
from repro.core.pipeline import METHODS, ScalingReport, scale_voltage
from repro.core.state import ScalingOptions
from repro.library.cells import Library
from repro.library.compass import build_compass_library
from repro.mapping.match import MatchTable
from repro.mapping.mapper import map_network, recover_area, speed_up_sizing
from repro.netlist.network import Network
from repro.opt.script import rugged
from repro.power.activity import Activity, random_activities
from repro.timing.delay import DelayCalculator
from repro.timing.sta import TimingAnalysis

DEFAULT_SLACK_FACTOR = 1.2
"""The paper loosens the minimum delay by 20%."""


@dataclass
class PreparedCircuit:
    """A mapped circuit ready for voltage scaling."""

    name: str
    network: Network
    tspec: float
    min_delay: float
    activity: Activity

    def fresh_copy(self) -> Network:
        return self.network.copy()


@dataclass
class CircuitResult:
    """All three algorithms' results on one circuit (one table row)."""

    name: str
    gates: int
    org_power_uw: float
    min_delay_ns: float
    tspec_ns: float
    reports: dict[str, ScalingReport] = field(default_factory=dict)

    def improvement(self, method: str) -> float:
        return self.reports[method].improvement_pct


def prepare_circuit(source: str | Network, library: Library,
                    slack_factor: float = DEFAULT_SLACK_FACTOR,
                    match_table: MatchTable | None = None,
                    options: ScalingOptions | None = None) -> PreparedCircuit:
    """Generate/optimize/map one circuit and fix its timing constraint."""
    if isinstance(source, str):
        network = load_circuit(source)
    else:
        network = source
    options = options or ScalingOptions()

    rugged(network)
    mapped = map_network(network, library, match_table=match_table)
    mapped.name = network.name

    # The covering DP estimates loads, so its raw output is not the true
    # minimum-delay circuit: a fanout-style speed-up sizing pass makes
    # Dmin honest first ("map -n1 -AFG" with zero required time), and
    # the relaxation anchors on the achievable minimum (ratcheting down
    # when recovery itself uncovers a faster point).
    min_delay = speed_up_sizing(mapped, library, po_load=options.po_load)
    achieved = min_delay
    for _ in range(4):
        budget = slack_factor * min_delay
        recover_area(mapped, library, budget, po_load=options.po_load)
        achieved = TimingAnalysis(
            DelayCalculator(mapped, library, po_load=options.po_load),
            budget,
        ).worst_delay
        if achieved >= min_delay - 1e-9:
            break
        min_delay = achieved
    # The paper's constraint is "the delay of the mapped circuit" after
    # the relaxed remap -- the algorithms start with zero slack on the
    # remapped critical paths, and only structurally short paths offer
    # room.  (On balanced circuits this is what zeroes out CVS.)
    tspec = achieved

    activity = random_activities(
        mapped, n_vectors=options.n_vectors, seed=options.activity_seed
    )
    return PreparedCircuit(
        name=network.name, network=mapped, tspec=tspec,
        min_delay=min_delay, activity=activity,
    )


def run_prepared(prepared: PreparedCircuit, library: Library,
                 methods: tuple[str, ...] = METHODS,
                 options: ScalingOptions | None = None,
                 max_iter: int = 10,
                 area_budget: float = 0.10) -> CircuitResult:
    """Run the scaling algorithms on an already-prepared circuit.

    Factored out of :func:`run_circuit` so callers that cache a
    :class:`PreparedCircuit` (the campaign workers, the benchmark
    fixtures) pay the optimize/map/constrain pipeline once per circuit
    instead of once per method.
    """
    result = CircuitResult(
        name=prepared.name,
        gates=sum(1 for n in prepared.network.nodes.values()
                  if not n.is_input),
        org_power_uw=0.0,
        min_delay_ns=prepared.min_delay,
        tspec_ns=prepared.tspec,
    )
    for method in methods:
        working = prepared.fresh_copy()
        _, report = scale_voltage(
            working, library, prepared.tspec, method=method,
            activity=prepared.activity, options=options,
            max_iter=max_iter, area_budget=area_budget,
        )
        result.reports[method] = report
        result.org_power_uw = report.power_before_uw
    return result


def run_circuit(source: str | Network, library: Library | None = None,
                methods: tuple[str, ...] = METHODS,
                slack_factor: float = DEFAULT_SLACK_FACTOR,
                match_table: MatchTable | None = None,
                options: ScalingOptions | None = None,
                max_iter: int = 10,
                area_budget: float = 0.10) -> CircuitResult:
    """The full paper flow on one circuit; returns one table row."""
    library = library or build_compass_library()
    prepared = prepare_circuit(source, library, slack_factor=slack_factor,
                               match_table=match_table, options=options)
    return run_prepared(prepared, library, methods=methods,
                        options=options, max_iter=max_iter,
                        area_budget=area_budget)


def run_suite(names: list[str], library: Library | None = None,
              methods: tuple[str, ...] = METHODS,
              slack_factor: float = DEFAULT_SLACK_FACTOR,
              options: ScalingOptions | None = None,
              verbose: bool = False) -> list[CircuitResult]:
    """Run the flow over a list of benchmark names."""
    library = library or build_compass_library()
    match_table = MatchTable(library)
    results = []
    for name in names:
        result = run_circuit(
            name, library, methods=methods, slack_factor=slack_factor,
            match_table=match_table, options=options,
        )
        results.append(result)
        if verbose:
            improvements = "  ".join(
                f"{method}={result.improvement(method):5.2f}%"
                for method in methods
            )
            print(f"{result.name:>10}: {result.gates:5d} gates  "
                  f"{improvements}")
    return results


__all__ = [
    "DEFAULT_SLACK_FACTOR",
    "PreparedCircuit",
    "CircuitResult",
    "prepare_circuit",
    "run_prepared",
    "run_circuit",
    "run_suite",
]
